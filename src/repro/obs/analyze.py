"""Derived profiles over the run store: phase stats, attribution, diffs.

Everything here is a pure function over :class:`repro.obs.store.RunStore`
queries — no SQL of its own, no I/O — so the CLI renderers, the tests
and CI all compute from one code path:

* :func:`phase_profile` — per-span-name **self time** statistics with
  nearest-rank p50/p95/p99 percentiles (falling back to the timing
  report's per-loop phase seconds when a run has no spans);
* :func:`top_loops` — top-N loop attribution by wall clock, displacement
  count, scheduling attempts, or II slack (achieved II − MII);
* :func:`diff_runs` — the statistical run-to-run diff: per-phase deltas
  gated by a noise threshold, new/vanished failure kinds, cache
  hit-rate, resilience-tally and counter deltas.  Only *regressions*
  (a phase slower than noise allows, or a new failure kind) make a diff
  non-clean — improvements and cache/counter drift are report-only, so
  a warm re-run diffs clean against its cold predecessor;
* :func:`check_baseline` — compare a profile against a committed
  ``repro.obs.baseline.v1`` budget document (CI's regression gate).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.store import RunStore

BASELINE_FORMAT = "repro.obs.baseline.v1"

#: A phase delta is a regression only when it exceeds both the relative
#: and the absolute noise gates; timer jitter on sub-millisecond phases
#: would otherwise flag every self-diff of a warm cache.
DEFAULT_NOISE_RATIO = 0.25
DEFAULT_NOISE_FLOOR = 0.05


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (the flat-file standard; no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * fraction // 1))  # ceil without math
    return ordered[min(len(ordered) - 1, int(rank) - 1)]


@dataclass(frozen=True)
class PhaseStat:
    """Self-time statistics of one span name across a run."""

    name: str
    count: int
    total: float
    self_total: float
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "self_total": self.self_total,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


def phase_profile(store: RunStore, run_id: str) -> List[PhaseStat]:
    """Per-span-name self-time profile, largest self-total first.

    When the run was ingested from a timing report alone (no spans),
    the per-loop phase seconds stand in: each loop's ``seconds[phase]``
    becomes one sample of that phase.
    """
    durations: Dict[str, List[float]] = {}
    totals: Dict[str, float] = {}
    for row in store.span_rows(run_id):
        durations.setdefault(row["name"], []).append(row["self_dur"])
        totals[row["name"]] = totals.get(row["name"], 0.0) + row["dur"]
    if not durations:
        for row in store.loop_rows(run_id):
            seconds = json.loads(row["seconds_json"] or "{}")
            for name, value in seconds.items():
                if name == "total":
                    continue
                durations.setdefault(name, []).append(value)
                totals[name] = totals.get(name, 0.0) + value
    stats = []
    for name, values in durations.items():
        self_total = sum(values)
        stats.append(
            PhaseStat(
                name=name,
                count=len(values),
                total=totals.get(name, self_total),
                self_total=self_total,
                mean=self_total / len(values),
                p50=percentile(values, 0.50),
                p95=percentile(values, 0.95),
                p99=percentile(values, 0.99),
                max=max(values),
            )
        )
    return sorted(stats, key=lambda s: (-s.self_total, s.name))


#: The attribution orderings ``top_loops`` understands.
TOP_KEYS = ("wall", "displaced", "attempts", "slack")


def top_loops(
    store: RunStore, run_id: str, by: str = "wall", n: int = 10
) -> List[Dict[str, Any]]:
    """Top-N loops of a run under one attribution key.

    ``wall`` ranks by per-loop wall clock (where did the run's time
    go), ``displaced`` by eviction count (where did the scheduler
    fight), ``attempts`` by candidate IIs tried (where did the II
    search climb), ``slack`` by achieved II − MII (where is achieved
    throughput furthest from the bound).
    """
    if by not in TOP_KEYS:
        raise ValueError(
            f"unknown attribution key {by!r}; choose from {', '.join(TOP_KEYS)}"
        )
    loops = []
    for row in store.loop_rows(run_id):
        entry = dict(row)
        entry["seconds"] = json.loads(entry.pop("seconds_json") or "{}")
        ii, mii = entry.get("ii"), entry.get("mii")
        entry["slack"] = (
            ii - mii if isinstance(ii, int) and isinstance(mii, int) else None
        )
        loops.append(entry)

    def sort_key(entry: Dict[str, Any]):
        value = entry.get(by)
        return (-(value if value is not None else -1), entry["idx"])

    ranked = sorted(loops, key=sort_key)
    return [entry for entry in ranked[:n] if entry.get(by) is not None]


@dataclass(frozen=True)
class PhaseDelta:
    """One phase's movement between two runs."""

    name: str
    base: float
    other: float

    @property
    def delta(self) -> float:
        return self.other - self.base

    @property
    def ratio(self) -> Optional[float]:
        return self.other / self.base if self.base > 0 else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "base": self.base,
            "other": self.other,
            "delta": self.delta,
            "ratio": self.ratio,
        }


@dataclass
class RunDiff:
    """The structured outcome of :func:`diff_runs`.

    ``regressions`` alone decide :attr:`clean`; everything else is
    context for the report.
    """

    base_id: str
    other_id: str
    noise_ratio: float
    noise_floor: float
    regressions: List[PhaseDelta] = field(default_factory=list)
    improvements: List[PhaseDelta] = field(default_factory=list)
    unchanged: List[PhaseDelta] = field(default_factory=list)
    new_failure_kinds: List[str] = field(default_factory=list)
    vanished_failure_kinds: List[str] = field(default_factory=list)
    cache_hit_rate: Dict[str, Optional[float]] = field(default_factory=dict)
    resilience_deltas: Dict[str, float] = field(default_factory=dict)
    counter_deltas: Dict[str, float] = field(default_factory=dict)
    slower_loops: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing regressed (new failure kinds included)."""
        return not self.regressions and not self.new_failure_kinds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base": self.base_id,
            "other": self.other_id,
            "clean": self.clean,
            "noise_ratio": self.noise_ratio,
            "noise_floor": self.noise_floor,
            "regressions": [d.to_dict() for d in self.regressions],
            "improvements": [d.to_dict() for d in self.improvements],
            "unchanged": [d.to_dict() for d in self.unchanged],
            "new_failure_kinds": list(self.new_failure_kinds),
            "vanished_failure_kinds": list(self.vanished_failure_kinds),
            "cache_hit_rate": dict(self.cache_hit_rate),
            "resilience_deltas": dict(self.resilience_deltas),
            "counter_deltas": dict(self.counter_deltas),
            "slower_loops": list(self.slower_loops),
        }


def _hit_rate(run: Dict[str, Any]) -> Optional[float]:
    hits, misses = run.get("cache_hits"), run.get("cache_misses")
    if hits is None or misses is None or hits + misses == 0:
        return None
    return hits / (hits + misses)


def _failure_kinds(store: RunStore, run_id: str) -> Dict[str, int]:
    kinds: Dict[str, int] = {}
    for row in store.loop_rows(run_id):
        kind = row["failure_kind"]
        if kind:
            kinds[kind] = kinds.get(kind, 0) + 1
    return kinds


def diff_runs(
    store: RunStore,
    base_id: str,
    other_id: str,
    noise_ratio: float = DEFAULT_NOISE_RATIO,
    noise_floor: float = DEFAULT_NOISE_FLOOR,
    top_n: int = 5,
) -> RunDiff:
    """Statistical diff of two runs (``other`` measured against ``base``).

    A phase regresses when its self-time total grows by more than
    ``max(noise_floor, noise_ratio * base)`` seconds — both gates, so
    neither sub-millisecond jitter nor a large-but-proportional wobble
    on a long phase trips the alarm.  A failure kind present in
    ``other`` but not ``base`` is always a regression (correctness
    never gets a noise allowance).  ``slower_loops`` names the top
    individual loops responsible for the regressed time, using per-loop
    span wall clock (which catches slowdowns *outside* the phase
    timers, e.g. an injected sleep) with the timing report as fallback.
    """
    diff = RunDiff(base_id, other_id, noise_ratio, noise_floor)

    base_profile = {s.name: s for s in phase_profile(store, base_id)}
    other_profile = {s.name: s for s in phase_profile(store, other_id)}
    for name in sorted(set(base_profile) | set(other_profile)):
        base = base_profile.get(name)
        other = other_profile.get(name)
        delta = PhaseDelta(
            name,
            base.self_total if base else 0.0,
            other.self_total if other else 0.0,
        )
        allowance = max(noise_floor, noise_ratio * delta.base)
        if delta.delta > allowance:
            diff.regressions.append(delta)
        elif delta.delta < -allowance:
            diff.improvements.append(delta)
        else:
            diff.unchanged.append(delta)
    diff.regressions.sort(key=lambda d: -d.delta)
    diff.improvements.sort(key=lambda d: d.delta)

    base_kinds = _failure_kinds(store, base_id)
    other_kinds = _failure_kinds(store, other_id)
    diff.new_failure_kinds = sorted(set(other_kinds) - set(base_kinds))
    diff.vanished_failure_kinds = sorted(set(base_kinds) - set(other_kinds))

    base_run = store.run_row(base_id)
    other_run = store.run_row(other_id)
    diff.cache_hit_rate = {
        "base": _hit_rate(base_run),
        "other": _hit_rate(other_run),
    }
    base_res = base_run.get("resilience") or {}
    other_res = other_run.get("resilience") or {}
    for name in sorted(set(base_res) | set(other_res)):
        base_value = base_res.get(name, 0)
        other_value = other_res.get(name, 0)
        if isinstance(base_value, (int, float)) and isinstance(
            other_value, (int, float)
        ):
            if other_value != base_value:
                diff.resilience_deltas[name] = other_value - base_value
    base_counters = store.counters(base_id) or (
        base_run.get("counters") or {}
    )
    other_counters = store.counters(other_id) or (
        other_run.get("counters") or {}
    )
    for name in sorted(set(base_counters) | set(other_counters)):
        base_value = base_counters.get(name, 0) or 0
        other_value = other_counters.get(name, 0) or 0
        if other_value != base_value:
            diff.counter_deltas[name] = other_value - base_value

    if not diff.clean:
        diff.slower_loops = _slower_loops(store, base_id, other_id, top_n)
    return diff


def _loop_walls(store: RunStore, run_id: str) -> Dict[str, float]:
    """Per-loop wall clock: loop-span durations, else timing-report wall."""
    walls: Dict[str, float] = {}
    for row in store.span_rows(run_id):
        if row["name"] == "loop" and row["loop"]:
            walls[row["loop"]] = walls.get(row["loop"], 0.0) + row["dur"]
    if walls:
        return walls
    for row in store.loop_rows(run_id):
        if row["name"] and row["wall"] is not None:
            walls[row["name"]] = row["wall"]
    return walls


def _slower_loops(
    store: RunStore, base_id: str, other_id: str, top_n: int
) -> List[Dict[str, Any]]:
    base = _loop_walls(store, base_id)
    other = _loop_walls(store, other_id)
    deltas = [
        {"loop": name, "base": base.get(name, 0.0), "other": wall,
         "delta": wall - base.get(name, 0.0)}
        for name, wall in other.items()
        if wall - base.get(name, 0.0) > 0
    ]
    deltas.sort(key=lambda d: -d["delta"])
    return deltas[:top_n]


# ----------------------------------------------------------------------
# Baseline budgets (CI's committed regression gate)


def make_baseline(
    store: RunStore, run_id: str, headroom: float = 3.0
) -> Dict[str, Any]:
    """Derive a ``repro.obs.baseline.v1`` budget document from one run.

    Budgets are *per loop* (self seconds / loop count), scaled by
    ``headroom``, so the committed baseline survives corpus growth and
    machine variance; CI regenerates one with ``repro obs report
    --make-baseline`` when the engine legitimately changes shape.
    """
    run = store.run_row(run_id)
    n_loops = max(1, run.get("n_loops") or len(store.loop_rows(run_id)) or 1)
    # A phase whose budget rounds to zero would breach on any epsilon of
    # self time; leave it out — absent phases are ignored at check time.
    budgets = {
        stat.name: budget
        for stat in phase_profile(store, run_id)
        if (budget := round(stat.self_total / n_loops * headroom, 6)) > 0.0
    }
    return {
        "format": BASELINE_FORMAT,
        "headroom": headroom,
        "per_loop_self_seconds": budgets,
    }


def check_baseline(
    store: RunStore, run_id: str, baseline: Dict[str, Any]
) -> List[str]:
    """Breaches of a committed baseline ([] means within budget).

    Phases absent from the baseline are ignored (new instrumentation
    must not fail CI until a budget is set for it).
    """
    if baseline.get("format") != BASELINE_FORMAT:
        return [f"not a {BASELINE_FORMAT} document"]
    budgets = baseline.get("per_loop_self_seconds") or {}
    run = store.run_row(run_id)
    n_loops = max(1, run.get("n_loops") or len(store.loop_rows(run_id)) or 1)
    breaches = []
    for stat in phase_profile(store, run_id):
        budget = budgets.get(stat.name)
        if budget is None:
            continue
        per_loop = stat.self_total / n_loops
        if per_loop > budget:
            breaches.append(
                f"phase {stat.name!r}: {per_loop:.6f}s/loop exceeds "
                f"budget {budget:.6f}s/loop"
            )
    return breaches
