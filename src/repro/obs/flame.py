"""Collapsed-stack flamegraph export (Brendan Gregg's folded format).

One line per unique stack, frames joined by ``;``, a space, then the
sample weight::

    corpus.evaluate;loop;schedule;schedule.attempt 1234

That format is what ``flamegraph.pl``, speedscope, inferno and the
Firefox profiler all import, so the observatory needs no renderer of its
own.  Two sources fold into it:

* **span trees** — each span contributes its *self time* (microseconds,
  so the weights stay integral) at its path from the root; the
  flamegraph then shows exactly where the run's wall clock went, with
  parent/child double-counting already removed;
* **profiler samples** — :mod:`repro.obs.profile` already collapses
  ``file:function`` stacks to counts; they pass through verbatim.

Output is sorted by stack string, so the same run always produces the
same file byte-for-byte (the determinism tests diff these).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence

from repro.obs.store import RunStore


def collapse_spans(
    spans: Sequence[Dict[str, Any]], weight_scale: float = 1e6
) -> Dict[str, int]:
    """Fold a span list into ``{stack: weight}`` (self time, scaled).

    ``spans`` are schema records or snapshot spans (dicts with
    ``span_id``/``parent_id``/``name``/``dur``).  Weights are self time
    times ``weight_scale`` rounded to int — microseconds by default —
    and zero-weight stacks are dropped (folded tooling treats 0 as
    noise).
    """
    by_id = {span["span_id"]: span for span in spans}
    child_dur: Dict[Any, float] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None:
            child_dur[parent] = child_dur.get(parent, 0.0) + span["dur"]

    paths: Dict[int, str] = {}

    def path_of(span: Dict[str, Any]) -> str:
        span_id = span["span_id"]
        if span_id in paths:
            return paths[span_id]
        frames: List[str] = []
        node, seen = span, set()
        while node is not None and node["span_id"] not in seen:
            seen.add(node["span_id"])
            frames.append(node["name"])
            parent = node.get("parent_id")
            node = by_id.get(parent) if parent is not None else None
        stack = ";".join(reversed(frames))
        paths[span_id] = stack
        return stack

    folded: Dict[str, int] = {}
    for span in spans:
        self_dur = max(0.0, span["dur"] - child_dur.get(span["span_id"], 0.0))
        weight = int(round(self_dur * weight_scale))
        if weight <= 0:
            continue
        stack = path_of(span)
        folded[stack] = folded.get(stack, 0) + weight
    return folded


def folded_lines(folded: Dict[str, int]) -> List[str]:
    """Render a folded dict as sorted ``stack weight`` lines."""
    return [f"{stack} {count}" for stack, count in sorted(folded.items())]


def flamegraph_from_store(
    store: RunStore, run_id: str, source: str = "spans"
) -> List[str]:
    """Folded lines for one stored run.

    ``source`` is ``"spans"`` (self-time flamegraph of the span tree) or
    ``"profile"`` (the sampling profiler's collapsed stacks, if the run
    carried any).
    """
    if source == "profile":
        return folded_lines(store.profile_samples(run_id))
    if source != "spans":
        raise ValueError(
            f"unknown flamegraph source {source!r}; choose spans or profile"
        )
    spans = [
        {
            "span_id": row["span_id"],
            "parent_id": row["parent_id"],
            "name": row["name"],
            "dur": row["dur"],
        }
        for row in store.span_rows(run_id)
    ]
    return folded_lines(collapse_spans(spans))


def write_flamegraph(lines: Iterable[str], path) -> Path:
    """Write folded lines to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    body = "".join(line + "\n" for line in lines)
    path.write_text(body)
    return path
