"""Baseline schedulers the paper compares against or builds upon.

* :mod:`repro.baselines.list_scheduler` — conventional acyclic list
  scheduling of a single iteration.  It supplies the schedule-length lower
  bound of Section 4.2 and is the complexity yardstick ("the cost of
  iterative modulo scheduling is 2.18x that of acyclic list scheduling").
* :mod:`repro.baselines.unroll` — the unroll-before-scheduling scheme: the
  loop body is replicated, cross-copy dependences are kept, dependences
  across the back edge are dropped (the scheduling barrier), and the
  unrolled body is list-scheduled.  Section 4.3 argues such schemes need
  more than 2.18x code growth to compete with modulo scheduling.
"""

from repro.baselines.list_scheduler import list_schedule, list_schedule_length
from repro.baselines.unroll import unroll_graph, unroll_and_schedule, UnrollResult

__all__ = [
    "list_schedule",
    "list_schedule_length",
    "unroll_graph",
    "unroll_and_schedule",
    "UnrollResult",
]
