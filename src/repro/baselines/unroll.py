"""Unroll-before-scheduling: the code-replicating alternative (Section 4.3).

The loop body is replicated ``factor`` times.  A dependence at distance
``d`` from copy ``c`` lands in copy ``c + d`` when that copy exists within
the unrolled body; dependences that would cross the new back edge are
dropped — that is precisely the *scheduling barrier* the approach suffers
from.  The unrolled body is then list-scheduled, and the achieved
per-original-iteration initiation interval is ``SL(unrolled) / factor``.

The paper's argument: to be competitive with iterative modulo scheduling,
such a scheme would have to come within a few percent of the execution-time
lower bound without replicating more than 2.18x of the loop body.  The
benchmark ``bench_unrolling_comparison`` measures exactly this trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.list_scheduler import list_schedule
from repro.core.schedule import Schedule
from repro.core.stats import Counters
from repro.ir.graph import DependenceGraph, GraphError


def unroll_graph(graph: DependenceGraph, factor: int) -> DependenceGraph:
    """Replicate the loop body ``factor`` times into a new sealed graph.

    Copy ``c`` of operation ``i`` keeps the opcode, registers and
    attributes of ``i`` (registers are suffixed with the copy number so the
    result is still a well-formed graph).  A dependence ``i -> j`` at
    distance ``d`` becomes, for each copy ``c`` with ``c + d < factor``, a
    distance-0 edge from copy ``c`` of ``i`` to copy ``c + d`` of ``j``;
    edges with ``c + d >= factor`` cross the back edge of the unrolled loop
    and are dropped (the scheduling barrier).  Inter-copy edges at
    distance 0 between different copies are *intra*-body dependences of the
    unrolled loop.
    """
    if not graph.sealed:
        raise GraphError(f"graph {graph.name!r} must be sealed")
    if factor < 1:
        raise ValueError(f"unroll factor must be >= 1, got {factor}")
    unrolled = DependenceGraph(
        graph._latencies,  # same latency provider as the original
        name=f"{graph.name}#unroll{factor}",
        delay_model=graph.delay_model,
    )
    index_map: Dict[Tuple[int, int], int] = {}
    for copy in range(factor):
        for op in graph.real_operations():
            new_index = unrolled.add_operation(
                op.opcode,
                dest=f"{op.dest}.{copy}" if op.dest else None,
                srcs=tuple(f"{s}.{copy}" for s in op.srcs),
                predicate=f"{op.predicate}.{copy}" if op.predicate else None,
                **op.attrs,
            )
            index_map[(op.index, copy)] = new_index
    for edge in graph.edges:
        pred_op = graph.operation(edge.pred)
        succ_op = graph.operation(edge.succ)
        if pred_op.is_pseudo or succ_op.is_pseudo:
            continue
        for copy in range(factor):
            target_copy = copy + edge.distance
            if target_copy >= factor:
                continue
            unrolled.add_edge(
                index_map[(edge.pred, copy)],
                index_map[(edge.succ, target_copy)],
                edge.kind,
                distance=0,
                delay=edge.delay,
            )
    return unrolled.seal()


@dataclass
class UnrollResult:
    """Outcome of unroll-then-list-schedule at one unroll factor."""

    factor: int
    schedule: Schedule
    schedule_length: int

    @property
    def effective_ii(self) -> float:
        """Cycles per original iteration (the barrier serializes bodies)."""
        return self.schedule_length / self.factor

    @property
    def code_growth(self) -> float:
        """Static code size relative to the original body."""
        return float(self.factor)


def unroll_and_schedule(
    graph: DependenceGraph,
    machine,
    factor: int,
    counters: Optional[Counters] = None,
) -> UnrollResult:
    """Unroll ``factor`` times, list-schedule, and report the trade-off."""
    unrolled = unroll_graph(graph, factor)
    schedule = list_schedule(unrolled, machine, counters)
    return UnrollResult(
        factor=factor,
        schedule=schedule,
        schedule_length=schedule.times[unrolled.stop],
    )
