"""Conventional acyclic list scheduling of one loop iteration.

Only intra-iteration dependences (distance 0) constrain a single
iteration, so the scheduler works on the acyclic distance-0 subgraph with
the classic height-based priority.  Resources use a *linear* schedule
reservation table — unlike modulo scheduling there is no wrap-around, so a
conflict-free slot always exists and no operation is ever displaced.

The resulting schedule length is one of the two components of the paper's
lower bound on the modulo schedule length (Section 4.2), and the cost of
scheduling each operation exactly once is the paper's complexity yardstick
for iterative modulo scheduling.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.core.mrt import make_linear_reservations
from repro.core.schedule import Schedule
from repro.core.stats import Counters
from repro.ir.graph import DependenceGraph, GraphError
from repro.machine.resources import ReservationTable


def _acyclic_heights(graph: DependenceGraph) -> List[int]:
    """Height-based priority over the distance-0 subgraph.

    The distance-0 subgraph of a legal loop is a DAG (a zero-distance
    circuit would make every II infeasible), so a reverse topological pass
    suffices.
    """
    n = graph.n_ops
    heights = [0] * n
    order = _topological_order(graph)
    for op in reversed(order):
        best = 0
        for edge in graph.succ_edges(op):
            if edge.distance != 0:
                continue
            candidate = heights[edge.succ] + edge.delay
            if candidate > best:
                best = candidate
        heights[op] = best
    return heights


def _topological_order(graph: DependenceGraph) -> List[int]:
    """Topological order of the distance-0 subgraph (Kahn's algorithm)."""
    n = graph.n_ops
    in_degree = [0] * n
    for edge in graph.edges:
        if edge.distance == 0 and edge.pred != edge.succ:
            in_degree[edge.succ] += 1
    ready = [op for op in range(n) if in_degree[op] == 0]
    order: List[int] = []
    while ready:
        op = ready.pop()
        order.append(op)
        for edge in graph.succ_edges(op):
            if edge.distance != 0 or edge.succ == edge.pred:
                continue
            in_degree[edge.succ] -= 1
            if in_degree[edge.succ] == 0:
                ready.append(edge.succ)
    if len(order) != n:
        raise GraphError(
            f"graph {graph.name!r} has a zero-distance dependence circuit"
        )
    return order


def list_schedule(
    graph: DependenceGraph,
    machine,
    counters: Optional[Counters] = None,
    mrt_impl: Optional[str] = None,
) -> Schedule:
    """List-schedule one iteration; returns a :class:`Schedule`.

    The returned schedule's ``ii`` is its schedule length (iterations do
    not overlap), clamped to at least 1.  ``mrt_impl`` selects the
    schedule-reservation-table implementation (the bitmask grid by
    default; ``"dict"`` for the legacy oracle — see
    :mod:`repro.core.mrt`).
    """
    if not graph.sealed:
        raise GraphError(f"graph {graph.name!r} must be sealed")
    heights = _acyclic_heights(graph)
    reservations = make_linear_reservations(machine=machine, impl=mrt_impl)
    times: Dict[int, int] = {}
    alts: Dict[int, Optional[ReservationTable]] = {}

    remaining_preds = [0] * graph.n_ops
    for edge in graph.edges:
        if edge.distance == 0 and edge.pred != edge.succ:
            remaining_preds[edge.succ] += 1
    ready: List[Tuple[int, int]] = []
    for op in range(graph.n_ops):
        if remaining_preds[op] == 0:
            heapq.heappush(ready, (-heights[op], op))

    scheduled = 0
    while ready:
        _, op = heapq.heappop(ready)
        estart = 0
        for edge in graph.pred_edges(op):
            if counters is not None:
                counters.estart_preds += 1
            if edge.distance != 0 or edge.pred == op:
                continue
            candidate = times[edge.pred] + edge.delay
            if candidate > estart:
                estart = candidate
        operation = graph.operation(op)
        if operation.is_pseudo:
            times[op] = estart
            alts[op] = None
        else:
            alternatives = machine.opcode(operation.opcode).alternatives
            time = estart
            placed = False
            while not placed:
                if counters is not None:
                    counters.findtimeslot_iters += 1
                for alternative in alternatives:
                    if not reservations.conflicts(alternative, time):
                        reservations.reserve(op, alternative, time)
                        times[op] = time
                        alts[op] = alternative
                        placed = True
                        break
                else:
                    time += 1
        if counters is not None:
            counters.ops_scheduled += 1
        scheduled += 1
        for edge in graph.succ_edges(op):
            if edge.distance != 0 or edge.succ == op:
                continue
            remaining_preds[edge.succ] -= 1
            if remaining_preds[edge.succ] == 0:
                heapq.heappush(ready, (-heights[edge.succ], edge.succ))

    if scheduled != graph.n_ops:
        raise GraphError(
            f"graph {graph.name!r}: list scheduling covered {scheduled} of "
            f"{graph.n_ops} operations"
        )
    length = times[graph.stop]
    # modulo=False: the reservations above are linear, so validators must
    # not fold them at t mod II — at II = SL a trailing resource use would
    # wrap onto cycle 0 and report a conflict the execution never has.
    return Schedule(graph, max(1, length), times, alts, modulo=False)


def list_schedule_length(
    graph: DependenceGraph,
    machine,
    counters: Optional[Counters] = None,
) -> int:
    """Schedule length achieved by acyclic list scheduling (Section 4.2)."""
    return list_schedule(graph, machine, counters).times[graph.stop]
