"""ASCII visualization of modulo schedules and pipelined execution.

Three views, all plain text so they render anywhere:

* :func:`resource_gantt` — the kernel as a resource x modulo-slot grid:
  which operation holds which resource at each slot (the schedule
  reservation table made visible, Figure-1 style);
* :func:`pipeline_diagram` — iterations x time: the classic software
  pipelining picture with the prologue ramp, steady state and epilogue
  drain;
* :func:`lifetime_chart` — value lifetimes against the II grid, which
  makes register pressure and the need for modulo variable expansion
  visible at a glance.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.codegen.lifetimes import compute_lifetimes
from repro.core.schedule import Schedule
from repro.ir.graph import DependenceGraph


def resource_gantt(
    graph: DependenceGraph, machine, schedule: Schedule
) -> str:
    """Render the kernel occupancy: resources as columns, slots as rows."""
    ii = schedule.ii
    cells: Dict[tuple, str] = {}
    for operation in graph.real_operations():
        alternative = schedule.alternatives.get(operation.index)
        if alternative is None:
            continue
        start = schedule.times[operation.index]
        for resource, offset in alternative.uses:
            cells[(resource, (start + offset) % ii)] = f"op{operation.index}"
    resources = [r for r in machine.resources if any(
        key[0] == r for key in cells
    )]
    if not resources:
        return "(no resources in use)"
    width = max(max(len(r) for r in resources), 5)
    header = "slot  " + "  ".join(r.ljust(width) for r in resources)
    lines = [header, "-" * len(header)]
    for slot in range(ii):
        row = [
            cells.get((resource, slot), "").ljust(width)
            for resource in resources
        ]
        lines.append(f"{slot:>4}  " + "  ".join(row))
    return "\n".join(lines)


def pipeline_diagram(
    graph: DependenceGraph,
    schedule: Schedule,
    iterations: int = 6,
    max_cycles: Optional[int] = None,
) -> str:
    """The iterations-vs-time picture of the software pipeline.

    Each row is one loop iteration; each column one cycle; a digit marks
    how many operations of that iteration issue that cycle.  The staircase
    offset between rows is the II.
    """
    ii = schedule.ii
    sl = schedule.schedule_length
    if max_cycles is None:
        max_cycles = (iterations - 1) * ii + sl + 1
    issue_counts: Dict[int, int] = {}
    for operation in graph.real_operations():
        t = schedule.times[operation.index]
        issue_counts[t] = issue_counts.get(t, 0) + 1
    lines = [
        f"II={ii}, SL={sl}: one row per iteration, one column per cycle"
    ]
    for k in range(iterations):
        row = []
        for cycle in range(max_cycles):
            local = cycle - k * ii
            if 0 <= local <= sl and local in issue_counts:
                count = issue_counts[local]
                row.append(str(count) if count < 10 else "+")
            elif 0 <= local <= sl:
                row.append("-")
            else:
                row.append(" ")
        lines.append(f"iter {k:>2} |" + "".join(row) + "|")
    return "\n".join(lines)


def lifetime_chart(graph: DependenceGraph, schedule: Schedule) -> str:
    """Value lifetimes drawn against the schedule, with II grid marks."""
    lifetimes = compute_lifetimes(graph, schedule)
    if not lifetimes:
        return "(no values)"
    horizon = max(l.end for l in lifetimes.values()) + 1
    ii = schedule.ii
    ruler = "".join("|" if t % ii == 0 else "." for t in range(horizon))
    lines = [f"II={ii} (bars every II cycles)", " " * 12 + ruler]
    for op in sorted(lifetimes):
        lifetime = lifetimes[op]
        opcode = graph.operation(op).opcode
        row = []
        for t in range(horizon):
            if t == lifetime.start:
                row.append("D")
            elif lifetime.start < t < lifetime.end:
                row.append("=")
            elif t == lifetime.end:
                row.append(">")
            else:
                row.append(" ")
        label = f"op{op} {opcode}"[:11]
        lines.append(f"{label:<12}" + "".join(row))
    return "\n".join(lines)
