"""Lint passes over dependence graphs, machine descriptions and MinDist.

Passes register themselves in a small registry (name, target, codes) so
the CLI and docs can enumerate them; each pass is a pure function that
appends findings to a :class:`~repro.check.diagnostics.Diagnostics` set.

Targets
-------
``graph``
    Well-formedness of a sealed dependence graph: the START/STOP
    bracketing invariants, delay sanity against the Table 1 formulae,
    zero-distance circuits, dangling virtual registers and dynamic-
    single-assignment violations in front-end graphs.
``machine``
    Structural lints of a machine description: dead resources,
    alternatives dominated (made unreachable) by an earlier one,
    reservation-table offsets inconsistent with the opcode latency.
``mindist``
    Invariants of the computed MinDist matrix: (max, +) transitive
    closure, and the paper's feasibility criterion — a non-positive
    diagonal exactly when II >= RecMII.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.check.diagnostics import Diagnostics, Severity, apply_waivers
from repro.ir.edges import DelayModel, DependenceKind, edge_delay
from repro.ir.graph import DependenceGraph


@dataclass(frozen=True)
class LintPass:
    """One registered lint pass."""

    name: str
    target: str
    codes: Tuple[str, ...]
    doc: str
    run: Callable

    def describe(self) -> str:
        """One-line listing entry for the CLI."""
        return f"{self.name} ({self.target}): {', '.join(self.codes)} — {self.doc}"


_PASSES: Dict[str, LintPass] = {}


def _register(name: str, target: str, codes: Tuple[str, ...]):
    def decorator(fn: Callable) -> Callable:
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        _PASSES[name] = LintPass(name, target, codes, doc, fn)
        return fn

    return decorator


def registered_passes(target: Optional[str] = None) -> Tuple[LintPass, ...]:
    """All registered passes (optionally restricted to one target)."""
    passes = [
        p for p in _PASSES.values() if target is None or p.target == target
    ]
    return tuple(sorted(passes, key=lambda p: p.name))


# ----------------------------------------------------------------------
# Graph passes
# ----------------------------------------------------------------------


@_register("graph-structure", "graph", ("GRAPH001",))
def _lint_graph_structure(
    graph: DependenceGraph, diags: Diagnostics, unit: str
) -> None:
    """START/STOP pseudo-op invariants of a sealed graph."""
    if not graph.sealed:
        diags.add("GRAPH001", "graph is not sealed", unit=unit)
        return
    start_op = graph.operation(graph.START)
    if not start_op.is_start:
        diags.add(
            "GRAPH001",
            f"operation 0 is {start_op.opcode!r}, not START",
            unit=unit,
            obj="op 0",
        )
    stop_op = graph.operation(graph.stop)
    if not stop_op.is_stop:
        diags.add(
            "GRAPH001",
            f"operation {graph.stop} is {stop_op.opcode!r}, not STOP",
            unit=unit,
            obj=f"op {graph.stop}",
        )
    if graph.pred_edges(graph.START):
        diags.add(
            "GRAPH001",
            "START has incoming dependence edges",
            unit=unit,
            obj="START",
        )
    if graph.succ_edges(graph.stop):
        diags.add(
            "GRAPH001",
            "STOP has outgoing dependence edges",
            unit=unit,
            obj="STOP",
        )
    for operation in graph.real_operations():
        op = operation.index
        if operation.is_pseudo:
            continue
        if not any(e.pred == graph.START for e in graph.pred_edges(op)):
            diags.add(
                "GRAPH001",
                f"real operation {op} lacks the START bracketing edge",
                unit=unit,
                obj=f"op {op}",
                op=op,
            )
        if not any(e.succ == graph.stop for e in graph.succ_edges(op)):
            diags.add(
                "GRAPH001",
                f"real operation {op} lacks the STOP bracketing edge",
                unit=unit,
                obj=f"op {op}",
                op=op,
            )


@_register("graph-delays", "graph", ("GRAPH002",))
def _lint_graph_delays(
    graph: DependenceGraph, diags: Diagnostics, unit: str
) -> None:
    """Edge delays re-derived from the Table 1 formulae."""
    if not graph.sealed:
        return
    for edge in graph.edges:
        if (
            graph.operation(edge.pred).is_pseudo
            or graph.operation(edge.succ).is_pseudo
        ):
            continue  # bracketing edges carry fixed structural delays
        if (
            edge.pred == edge.succ
            and graph.operation(edge.pred).attrs.get("role") == "loop_control"
        ):
            # The loop-closing branch issues once per II regardless of its
            # own latency; the front end pins this self-dependence to
            # delay 1 by construction.
            continue
        pred_latency = graph.latency(edge.pred)
        succ_latency = graph.latency(edge.succ)
        expected = edge_delay(
            edge.kind, pred_latency, succ_latency, graph.delay_model
        )
        floor = edge_delay(edge.kind, pred_latency, succ_latency, DelayModel.VLIW)
        if edge.delay == expected:
            continue
        below_minimum = edge.delay < floor
        diags.add(
            "GRAPH002",
            f"edge {edge.describe()} has delay {edge.delay}; Table 1 "
            f"({graph.delay_model.value} model) gives {expected}"
            + (f", hardware minimum {floor}" if below_minimum else ""),
            unit=unit,
            obj=f"edge {edge.pred} -> {edge.succ}",
            severity=Severity.ERROR if below_minimum else None,
            delay=edge.delay,
            expected=expected,
            floor=floor,
        )


@_register("graph-circuits", "graph", ("GRAPH003",))
def _lint_graph_circuits(
    graph: DependenceGraph, diags: Diagnostics, unit: str
) -> None:
    """Zero-distance dependence circuits (unschedulable at any II)."""
    n = graph.n_ops
    indegree = [0] * n
    succs: Dict[int, list] = {op: [] for op in range(n)}
    for edge in graph.edges:
        if edge.distance == 0:
            succs[edge.pred].append(edge.succ)
            indegree[edge.succ] += 1
    ready = [op for op in range(n) if indegree[op] == 0]
    removed = 0
    while ready:
        op = ready.pop()
        removed += 1
        for succ in succs[op]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if removed < n:
        cyclic = sorted(op for op in range(n) if indegree[op] > 0)
        diags.add(
            "GRAPH003",
            f"zero-distance dependence circuit through operations {cyclic}: "
            "every circuit must carry distance >= 1",
            unit=unit,
            obj=f"ops {cyclic}",
            ops=cyclic,
        )


@_register("graph-registers", "graph", ("GRAPH004", "GRAPH005"))
def _lint_graph_registers(
    graph: DependenceGraph, diags: Diagnostics, unit: str
) -> None:
    """Dangling virtual registers and DSA single-assignment violations."""
    definers: Dict[str, list] = {}
    for operation in graph.real_operations():
        if operation.dest is not None:
            definers.setdefault(operation.dest, []).append(operation.index)
    for name, ops in sorted(definers.items()):
        if len(ops) > 1:
            diags.add(
                "GRAPH005",
                f"virtual register {name!r} assigned by operations {ops}: "
                "IF-converted code must be dynamic single assignment",
                unit=unit,
                obj=f"vreg {name}",
                vreg=name,
                ops=ops,
            )
    # Dangling-read analysis needs the front end's operand descriptors to
    # know which source names are live-ins; hand-built graphs without
    # them are skipped.
    liveins = set()
    has_descriptors = False
    for operation in graph.real_operations():
        for descriptor in operation.attrs.get("operands", ()):
            has_descriptors = True
            if descriptor[0] == "livein":
                liveins.add(descriptor[1])
    if not has_descriptors:
        return
    for operation in graph.real_operations():
        names = list(operation.srcs)
        if operation.predicate is not None:
            names.append(operation.predicate)
        for name in names:
            if name not in definers and name not in liveins:
                diags.add(
                    "GRAPH004",
                    f"operation {operation.index} reads virtual register "
                    f"{name!r} which no operation defines and no live-in "
                    "provides",
                    unit=unit,
                    obj=f"op {operation.index}",
                    op=operation.index,
                    vreg=name,
                )


# ----------------------------------------------------------------------
# Machine passes
# ----------------------------------------------------------------------


@_register("machine-dead-resources", "machine", ("MACH001",))
def _lint_machine_dead_resources(machine, diags: Diagnostics, unit: str) -> None:
    """Resources declared but referenced by no reservation table."""
    used = set()
    for name in machine.opcode_names:
        for alternative in machine.opcode(name).alternatives:
            used.update(alternative.resources)
    for resource in machine.resources:
        if resource not in used:
            diags.add(
                "MACH001",
                f"resource {resource!r} is referenced by no reservation "
                "table of any opcode",
                unit=unit,
                obj=f"resource {resource}",
                resource=resource,
            )


@_register("machine-dominated-alternatives", "machine", ("MACH002",))
def _lint_machine_dominated(machine, diags: Diagnostics, unit: str) -> None:
    """Alternatives whose uses are a superset of an earlier alternative's."""
    for name in machine.opcode_names:
        alternatives = machine.opcode(name).alternatives
        for later in range(1, len(alternatives)):
            for earlier in range(later):
                if set(alternatives[earlier].uses) <= set(alternatives[later].uses):
                    diags.add(
                        "MACH002",
                        f"opcode {name!r}: alternative "
                        f"{alternatives[later].name!r} is dominated by "
                        f"earlier alternative {alternatives[earlier].name!r} "
                        "(its uses are a superset, so in-order probing can "
                        "never prefer it)",
                        unit=unit,
                        obj=f"opcode {name}",
                        opcode=name,
                        dominated=alternatives[later].name,
                        dominator=alternatives[earlier].name,
                    )
                    break


@_register("machine-latencies", "machine", ("MACH003", "MACH004"))
def _lint_machine_latencies(machine, diags: Diagnostics, unit: str) -> None:
    """Latency / reservation-span consistency per opcode."""
    for name in machine.opcode_names:
        opcode = machine.opcode(name)
        if opcode.latency < 1:
            diags.add(
                "MACH004",
                f"opcode {name!r} has latency {opcode.latency}; the Table 1 "
                "delay formulae assume every operation takes at least one "
                "cycle",
                unit=unit,
                obj=f"opcode {name}",
                opcode=name,
                latency=opcode.latency,
            )
            continue
        for alternative in opcode.alternatives:
            worst = max(offset for _, offset in alternative.uses)
            if worst > opcode.latency - 1:
                diags.add(
                    "MACH003",
                    f"opcode {name!r} alternative {alternative.name!r} holds "
                    f"a resource at offset {worst} but the result is "
                    f"architecturally available after latency "
                    f"{opcode.latency}",
                    unit=unit,
                    obj=f"opcode {name}",
                    opcode=name,
                    alternative=alternative.name,
                    offset=worst,
                    latency=opcode.latency,
                )


# ----------------------------------------------------------------------
# MinDist passes
# ----------------------------------------------------------------------


def check_mindist_matrix(
    dist: np.ndarray,
    ii: int,
    rec_mii: Optional[int] = None,
    *,
    rec_mii_exact: bool = True,
    unit: str = "mindist",
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Check closure and feasibility invariants of one MinDist matrix.

    ``dist`` must be the (max, +) closure :func:`repro.core.mindist.
    compute_mindist` returns for ``ii``; ``rec_mii`` (when exact) pins the
    paper's criterion that the diagonal is non-positive iff II >= RecMII.
    """
    diags = diagnostics if diagnostics is not None else Diagnostics()
    n = dist.shape[0]
    diagonal = np.diagonal(dist)
    feasible = bool(np.all(diagonal <= 0))
    for k in range(n) if feasible else ():
        # With a positive cycle (infeasible II) the (max, +) closure has
        # no fixpoint — path lengths grow without bound — so the closure
        # invariant is only meaningful at a feasible II.
        via_k = dist[:, k : k + 1] + dist[k : k + 1, :]
        with np.errstate(invalid="ignore"):
            gain = via_k > dist
        if np.any(gain):
            i, j = np.argwhere(gain)[0]
            diags.add(
                "MIND001",
                f"MinDist not transitively closed at II={ii}: "
                f"dist[{i},{j}]={dist[i, j]} but the path through {k} "
                f"gives {via_k[i, j]}",
                unit=unit,
                obj=f"entry ({int(i)}, {int(j)})",
                ii=ii,
                i=int(i),
                j=int(j),
                via=int(k),
            )
            break
    if rec_mii is not None and rec_mii_exact:
        expected = ii >= rec_mii
        if feasible != expected:
            worst = float(np.max(diagonal))
            diags.add(
                "MIND002",
                f"MinDist diagonal at II={ii} is "
                f"{'non-positive' if feasible else f'positive (max {worst})'} "
                f"but RecMII={rec_mii} says the II is "
                f"{'feasible' if expected else 'infeasible'}",
                unit=unit,
                obj=f"II {ii}",
                ii=ii,
                rec_mii=rec_mii,
                feasible=feasible,
            )
    return diags


@_register("mindist-invariants", "mindist", ("MIND001", "MIND002"))
def _lint_mindist(
    graph: DependenceGraph, machine, diags: Diagnostics, unit: str
) -> None:
    """Closure + feasibility of the MinDist matrix around RecMII."""
    from repro.core.mii import compute_mii
    from repro.core.mindist import compute_mindist

    mii_result = compute_mii(graph, machine, exact=True)
    rec = mii_result.rec_mii
    probes = {max(1, rec - 1), rec, rec + 1}
    for ii in sorted(probes):
        dist, _ = compute_mindist(graph, ii)
        check_mindist_matrix(
            dist,
            ii,
            rec,
            rec_mii_exact=mii_result.rec_mii_exact,
            unit=unit,
            diagnostics=diags,
        )


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------


def lint_graph(
    graph: DependenceGraph,
    *,
    unit: Optional[str] = None,
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Run every graph-target lint pass over ``graph``."""
    diags = diagnostics if diagnostics is not None else Diagnostics()
    unit = unit if unit is not None else f"loop {graph.name!r}"
    for lint in registered_passes("graph"):
        lint.run(graph, diags, unit)
    return diags


def lint_machine(
    machine,
    *,
    waivers: Iterable[str] = (),
    unit: Optional[str] = None,
) -> Diagnostics:
    """Run every machine-target lint pass; ``waivers`` downgrade findings.

    Waivers are the codes extracted from ``# lint: waive(CODE)`` comments
    in the machine's defining module (see
    :func:`repro.check.diagnostics.waivers_in_source`).
    """
    diags = Diagnostics()
    unit = unit if unit is not None else f"machine {machine.name!r}"
    for lint in registered_passes("machine"):
        lint.run(machine, diags, unit)
    return apply_waivers(diags, waivers)


def lint_mindist(
    graph: DependenceGraph,
    machine,
    *,
    unit: Optional[str] = None,
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Run the MinDist invariant pass for ``graph`` on ``machine``."""
    diags = diagnostics if diagnostics is not None else Diagnostics()
    unit = unit if unit is not None else f"loop {graph.name!r}"
    for lint in registered_passes("mindist"):
        lint.run(graph, machine, diags, unit)
    return diags
