"""Static verification and linting (the repo's second correctness oracle).

The :mod:`repro.check` package re-derives, from first principles, the
constraints a legal modulo schedule must satisfy — dependence-edge
inequalities, conflict-free modulo reservation tables, codegen artifact
invariants — and lints dependence graphs, machine descriptions, and
MinDist matrices for structural mistakes.  It deliberately shares *no*
conflict-probe code with the scheduler's bitmask fast path
(:class:`repro.machine.CompiledMaskSet`): occupancy is rebuilt from the
raw reservation tables, so a bug in the compiled masks is caught here
rather than inherited.

Entry points
------------
* :func:`check_schedule` — the independent schedule validator.
* :func:`check_codegen` — cross-checks MVE / rotating-register /
  prologue-epilogue artifacts against the schedule.
* :func:`lint_graph`, :func:`lint_machine`, :func:`lint_mindist` — the
  pass-registry linters.
* :class:`Diagnostics` / :class:`Diagnostic` — the structured findings
  every checker emits, with stable codes (``SCHED001``, ``MACH003``, …).

See ``docs/CHECKING.md`` for the full code catalogue and how the static
validator relates to the simulator oracle.
"""

from repro.check.diagnostics import (
    CODES,
    Diagnostic,
    Diagnostics,
    Severity,
    SourceLocation,
    apply_waivers,
    parse_waivers,
    render_human,
    waivers_in_source,
)
from repro.check.lint import (
    LintPass,
    lint_graph,
    lint_machine,
    lint_mindist,
    registered_passes,
)
from repro.check.validate import check_schedule
from repro.check.codegen import check_codegen

__all__ = [
    "CODES",
    "Diagnostic",
    "Diagnostics",
    "LintPass",
    "Severity",
    "SourceLocation",
    "apply_waivers",
    "check_codegen",
    "check_schedule",
    "lint_graph",
    "lint_machine",
    "lint_mindist",
    "parse_waivers",
    "registered_passes",
    "render_human",
    "waivers_in_source",
]
