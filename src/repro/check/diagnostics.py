"""Structured diagnostics: stable codes, severities, locations, renderers.

Every checker and lint pass in :mod:`repro.check` reports its findings as
:class:`Diagnostic` records collected in a :class:`Diagnostics` set.  Codes
are *stable identifiers* (``SCHED005``, ``MACH002``, …): tests, waivers and
CI gates key on them, so a code is never renumbered or reused — the
negative-path regression suite (one corrupted fixture per code, see
:mod:`repro.check.mutate`) pins each one in place.

Two renderers are provided: a human one (one finding per line, grouped by
severity rank) and a JSON document under the ``repro.check.v1`` format,
which the CI ``static-check`` job uploads as an artifact.

Findings from machine-description lints can be *waived* with an inline
source comment::

    resources = ("alu", "spare_bus")  # lint: waive(MACH001)

:func:`waivers_in_source` extracts the waived codes from an object's
source text and :func:`apply_waivers` downgrades matching findings to
``LINT000`` info records, keeping the waiver visible in reports.
"""

from __future__ import annotations

import enum
import inspect
import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

#: Format tag of the JSON diagnostics document.
JSON_FORMAT = "repro.check.v1"


class Severity(enum.Enum):
    """How bad a finding is.  Only ``ERROR`` fails a check run."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: errors first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


#: The stable code registry: code -> (default severity, summary).
#: Codes are never renumbered or reused; new findings get new codes.
CODES: Dict[str, Tuple[Severity, str]] = {
    # -- schedule validator (repro.check.validate) ---------------------
    "SCHED001": (Severity.ERROR, "invalid initiation interval"),
    "SCHED002": (Severity.ERROR, "operation missing from schedule"),
    "SCHED003": (Severity.ERROR, "START not scheduled at cycle 0"),
    "SCHED004": (Severity.ERROR, "operation scheduled at negative time"),
    "SCHED005": (Severity.ERROR, "dependence-edge inequality violated"),
    "SCHED006": (Severity.ERROR, "pseudo-operation holds resources"),
    "SCHED007": (Severity.ERROR, "operation lacks a reservation alternative"),
    "SCHED008": (Severity.ERROR, "alternative foreign to the operation's opcode"),
    "SCHED009": (Severity.ERROR, "modulo reservation conflict"),
    "SCHED010": (Severity.ERROR, "linear reservation conflict"),
    # -- codegen cross-checks (repro.check.codegen) --------------------
    "CODE001": (Severity.ERROR, "MVE unroll factor below lifetime requirement"),
    "CODE002": (Severity.ERROR, "kernel row placement inconsistent with schedule"),
    "CODE003": (Severity.ERROR, "rotating live range overwritten before last use"),
    "CODE004": (Severity.ERROR, "rotating register blocks overlap"),
    "CODE005": (Severity.ERROR, "prologue/epilogue instance counts inconsistent"),
    "CODE006": (Severity.ERROR, "prologue/epilogue row contents inconsistent"),
    # -- dependence-graph lints (repro.check.lint) ---------------------
    "GRAPH001": (Severity.ERROR, "START/STOP bracketing invariant broken"),
    "GRAPH002": (Severity.WARNING, "edge delay deviates from Table 1"),
    "GRAPH003": (Severity.ERROR, "zero-distance dependence circuit"),
    "GRAPH004": (Severity.ERROR, "dangling virtual register"),
    "GRAPH005": (Severity.ERROR, "DSA single-assignment violation"),
    # -- machine-description lints -------------------------------------
    "MACH001": (Severity.WARNING, "dead resource never referenced"),
    "MACH002": (Severity.WARNING, "alternative dominated by an earlier one"),
    "MACH003": (Severity.WARNING, "resource held at or beyond opcode latency"),
    "MACH004": (Severity.WARNING, "non-positive opcode latency"),
    # -- MinDist-matrix invariants -------------------------------------
    "MIND001": (Severity.ERROR, "MinDist matrix not transitively closed"),
    "MIND002": (Severity.ERROR, "MinDist feasibility disagrees with RecMII"),
    # -- simulator oracle (repro.simulator.check) ----------------------
    "SIM001": (Severity.ERROR, "final state mismatch vs sequential oracle"),
    "SIM002": (Severity.ERROR, "dynamic dependence violation"),
    # -- bookkeeping ----------------------------------------------------
    "LINT000": (Severity.INFO, "finding waived by inline directive"),
}


@dataclass(frozen=True)
class SourceLocation:
    """Where a finding points: a unit (loop/machine) and an object in it."""

    unit: str
    obj: Optional[str] = None

    def describe(self) -> str:
        """``unit`` or ``unit / obj``."""
        return self.unit if self.obj is None else f"{self.unit} / {self.obj}"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, severity, message and location."""

    code: str
    severity: Severity
    message: str
    location: Optional[SourceLocation] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line human rendering: ``error SCHED005 [where]: message``."""
        where = f" [{self.location.describe()}]" if self.location else ""
        return f"{self.severity.value} {self.code}{where}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible record (``repro.check.v1`` diagnostics entry)."""
        record: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.location is not None:
            record["unit"] = self.location.unit
            if self.location.obj is not None:
                record["obj"] = self.location.obj
        if self.detail:
            record["detail"] = dict(self.detail)
        return record


class Diagnostics:
    """An ordered collection of findings with severity queries."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self._diagnostics: List[Diagnostic] = list(diagnostics)

    def add(
        self,
        code: str,
        message: str,
        *,
        unit: Optional[str] = None,
        obj: Optional[str] = None,
        severity: Optional[Severity] = None,
        **detail: Any,
    ) -> Diagnostic:
        """Record one finding under a registered code.

        The severity defaults to the code's registry entry; passing
        ``severity`` explicitly upgrades/downgrades a single finding
        (e.g. ``GRAPH002`` is a warning for over-conservative delays but
        an error for delays below the hardware minimum).
        """
        try:
            default_severity, _ = CODES[code]
        except KeyError:
            raise ValueError(f"unregistered diagnostic code {code!r}") from None
        location = None if unit is None else SourceLocation(unit, obj)
        diagnostic = Diagnostic(
            code=code,
            severity=severity if severity is not None else default_severity,
            message=message,
            location=location,
            detail=detail,
        )
        self._diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "Diagnostics") -> None:
        """Append every finding of ``other``."""
        self._diagnostics.extend(other)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diagnostics)

    def __len__(self) -> int:
        return len(self._diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        """Findings at ``ERROR`` severity."""
        return [d for d in self._diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        """Findings at ``WARNING`` severity."""
        return [d for d in self._diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no finding is an error (warnings/info allowed)."""
        return not self.errors

    def codes(self) -> List[str]:
        """The distinct codes present, in first-appearance order."""
        seen: List[str] = []
        for diagnostic in self._diagnostics:
            if diagnostic.code not in seen:
                seen.append(diagnostic.code)
        return seen

    def messages(self) -> List[str]:
        """Just the message strings, in order (legacy validator API)."""
        return [d.message for d in self._diagnostics]

    def render(self, limit: Optional[int] = None) -> str:
        """Human rendering; see :func:`render_human`."""
        return render_human(self, limit=limit)

    def to_dict(self, **meta: Any) -> Dict[str, Any]:
        """The ``repro.check.v1`` JSON document for these findings."""
        counts = {"error": 0, "warning": 0, "info": 0}
        for diagnostic in self._diagnostics:
            counts[diagnostic.severity.value] += 1
        document: Dict[str, Any] = {
            "format": JSON_FORMAT,
            "counts": counts,
            "diagnostics": [d.to_dict() for d in self._diagnostics],
        }
        document.update(meta)
        return document

    def to_json(self, indent: Optional[int] = None, **meta: Any) -> str:
        """Serialize :meth:`to_dict` to JSON text."""
        return json.dumps(self.to_dict(**meta), indent=indent, sort_keys=True)


def render_human(diagnostics: Diagnostics, limit: Optional[int] = None) -> str:
    """Render findings one per line, errors first, with a summary head."""
    ordered = sorted(diagnostics, key=lambda d: d.severity.rank)
    n_errors = len(diagnostics.errors)
    n_warnings = len(diagnostics.warnings)
    if not ordered:
        return "check: clean (no findings)"
    head = (
        f"check: {n_errors} error(s), {n_warnings} warning(s), "
        f"{len(ordered) - n_errors - n_warnings} note(s)"
    )
    shown = ordered if limit is None else ordered[:limit]
    lines = [head] + ["  " + d.describe() for d in shown]
    if limit is not None and len(ordered) > limit:
        lines.append(f"  ... {len(ordered) - limit} more")
    return "\n".join(lines)


#: ``# lint: waive(MACH001)`` or ``# lint: waive(MACH001, MACH003)``.
_WAIVE_RE = re.compile(r"#\s*lint:\s*waive\(\s*([A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)\s*\)")


def parse_waivers(text: str) -> frozenset:
    """Codes waived by ``# lint: waive(...)`` comments in ``text``."""
    codes = set()
    for match in _WAIVE_RE.finditer(text):
        for code in match.group(1).split(","):
            codes.add(code.strip())
    return frozenset(codes)


def waivers_in_source(obj: Any) -> frozenset:
    """Waived codes found in the source of a module/function/class.

    Objects whose source is unavailable (builtins, REPL definitions)
    waive nothing.
    """
    try:
        text = inspect.getsource(obj)
    except (OSError, TypeError):
        return frozenset()
    return parse_waivers(text)


def apply_waivers(diagnostics: Diagnostics, waivers: Iterable[str]) -> Diagnostics:
    """Downgrade waived findings to ``LINT000`` info records.

    The waived finding stays visible (its original code and message move
    into the ``LINT000`` record's detail) but no longer counts as an
    error or warning, so a waiver is auditable rather than silent.
    """
    waived_codes = frozenset(waivers)
    result = Diagnostics()
    for diagnostic in diagnostics:
        if diagnostic.code in waived_codes:
            result.add(
                "LINT000",
                f"waived {diagnostic.code}: {diagnostic.message}",
                unit=diagnostic.location.unit if diagnostic.location else None,
                obj=diagnostic.location.obj if diagnostic.location else None,
                waived_code=diagnostic.code,
            )
        else:
            result._diagnostics.append(diagnostic)
    return result
