"""Codegen artifact cross-checks (``CODE001``–``CODE006``).

Given a modulo schedule and the artifacts built from it — the MVE-expanded
kernel, the rotating-register allocation, the explicit prologue / kernel /
epilogue layout — these checks re-derive what each artifact *must* look
like from the schedule alone and compare:

* value lifetimes are recomputed here (producer issue to last flow read,
  ``t(Q) + II * distance``), not imported from :mod:`repro.codegen`;
* the MVE unroll degree must cover the longest lifetime
  (``ceil(lifetime / II)``);
* a rotating block of ``width`` registers is overwritten every
  ``width * II`` cycles, so every lifetime must fit and every
  cross-iteration read distance must stay inside the block;
* prologue and epilogue must contain exactly the operation instances the
  ramp equations predict: ``sum(SC - 1 - stage)`` filling instances and
  ``sum(stage)`` draining ones, each in its exact row.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.check.diagnostics import Diagnostics
from repro.core.schedule import Schedule
from repro.ir.edges import DependenceKind
from repro.ir.graph import DependenceGraph


def _value_lifetimes(
    graph: DependenceGraph, schedule: Schedule
) -> Dict[int, Tuple[int, int]]:
    """Recompute ``op -> (start, end)`` lifetimes from first principles."""
    lifetimes: Dict[int, Tuple[int, int]] = {}
    ii = schedule.ii
    for operation in graph.real_operations():
        if operation.dest is None:
            continue
        op = operation.index
        start = schedule.times[op]
        end = start + graph.latency(op)
        for edge in graph.succ_edges(op):
            if edge.kind is not DependenceKind.FLOW:
                continue
            if graph.operation(edge.succ).is_pseudo:
                continue
            end = max(end, schedule.times[edge.succ] + ii * edge.distance)
        lifetimes[op] = (start, end)
    return lifetimes


def check_codegen(
    graph: DependenceGraph,
    schedule: Schedule,
    *,
    kernel=None,
    allocation=None,
    code=None,
    unit: Optional[str] = None,
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Cross-check codegen artifacts against ``schedule``.

    Artifacts not supplied are built with the production codegen modules
    and then verified independently (translation validation: the checker
    trusts the schedule, never the builder).
    """
    diags = diagnostics if diagnostics is not None else Diagnostics()
    unit = unit if unit is not None else f"loop {graph.name!r}"
    ii = schedule.ii
    lifetimes = _value_lifetimes(graph, schedule)
    required_unroll = 1
    for start, end in lifetimes.values():
        if end > start:
            required_unroll = max(required_unroll, math.ceil((end - start) / ii))

    if kernel is None:
        from repro.codegen.mve import modulo_variable_expansion

        kernel = modulo_variable_expansion(graph, schedule)
    _check_kernel(graph, schedule, kernel, required_unroll, unit, diags)

    if allocation is None:
        from repro.codegen.rotation import allocate_rotating

        allocation = allocate_rotating(graph, schedule)
    _check_rotation(graph, schedule, allocation, lifetimes, unit, diags)

    if code is None:
        from repro.codegen.emit import emit_pipelined_code

        code = emit_pipelined_code(graph, schedule, use_mve=False)
    _check_emitted(graph, schedule, code, unit, diags)
    return diags


def _check_kernel(
    graph: DependenceGraph,
    schedule: Schedule,
    kernel,
    required_unroll: int,
    unit: str,
    diags: Diagnostics,
) -> None:
    ii = schedule.ii
    if kernel.unroll < required_unroll:
        diags.add(
            "CODE001",
            f"MVE unroll {kernel.unroll} below the {required_unroll} copies "
            f"the longest lifetime requires at II={ii}",
            unit=unit,
            obj="kernel",
            unroll=kernel.unroll,
            required=required_unroll,
            ii=ii,
        )
        return
    unroll = kernel.unroll
    if kernel.ii != ii or len(kernel.rows) != ii * unroll:
        diags.add(
            "CODE002",
            f"kernel shape II={kernel.ii} x unroll={unroll} with "
            f"{len(kernel.rows)} rows does not match schedule II={ii}",
            unit=unit,
            obj="kernel",
            kernel_ii=kernel.ii,
            rows=len(kernel.rows),
            ii=ii,
        )
        return
    # Each real operation must appear once per kernel copy, in the row
    # congruent to its slot, renamed to the value copy its stage implies.
    placements: Dict[int, List[Tuple[int, int]]] = {}
    for row_index, row in enumerate(kernel.rows):
        for renamed in row:
            placements.setdefault(renamed.op, []).append((row_index, renamed.copy))
    for operation in graph.real_operations():
        op = operation.index
        slot = schedule.times[op] % ii
        stage = schedule.times[op] // ii
        expected = sorted(
            (copy * ii + slot, (copy - stage) % unroll) for copy in range(unroll)
        )
        actual = sorted(placements.pop(op, []))
        if actual != expected:
            diags.add(
                "CODE002",
                f"kernel places op {op} at (row, copy) {actual}, "
                f"schedule requires {expected}",
                unit=unit,
                obj=f"op {op}",
                op=op,
                actual=actual,
                expected=expected,
            )
    for op, actual in placements.items():
        diags.add(
            "CODE002",
            f"kernel contains op {op} absent from the schedule's real "
            f"operations (rows {sorted(row for row, _ in actual)})",
            unit=unit,
            obj=f"op {op}",
            op=op,
        )


def _check_rotation(
    graph: DependenceGraph,
    schedule: Schedule,
    allocation,
    lifetimes: Dict[int, Tuple[int, int]],
    unit: str,
    diags: Diagnostics,
) -> None:
    ii = schedule.ii
    for op, (start, end) in sorted(lifetimes.items()):
        width = allocation.widths.get(op)
        if width is None or op not in allocation.bases:
            diags.add(
                "CODE004",
                f"value of op {op} has no rotating register block",
                unit=unit,
                obj=f"op {op}",
                op=op,
            )
            continue
        # Instance k is overwritten when instance k + width is defined
        # (width * II cycles later); its last read is end - start after
        # its definition.
        if end - start > width * ii:
            diags.add(
                "CODE003",
                f"op {op}: live range [{start}, {end}] ({end - start} cycles) "
                f"is overwritten after width {width} * II={ii} = {width * ii} "
                f"cycles, before its last use",
                unit=unit,
                obj=f"op {op}",
                op=op,
                start=start,
                end=end,
                width=width,
                ii=ii,
            )
        for edge in graph.succ_edges(op):
            if edge.kind is not DependenceKind.FLOW:
                continue
            if graph.operation(edge.succ).is_pseudo:
                continue
            if edge.distance >= width + 1:
                diags.add(
                    "CODE003",
                    f"op {op}: consumer {edge.succ} reads {edge.distance} "
                    f"iterations back but the block holds only {width} "
                    f"addressable instances",
                    unit=unit,
                    obj=f"op {op}",
                    op=op,
                    consumer=edge.succ,
                    distance=edge.distance,
                    width=width,
                )
    blocks = sorted(
        (allocation.bases[op], allocation.widths[op], op)
        for op in allocation.bases
        if op in allocation.widths
    )
    cursor = 0
    for base, width, op in blocks:
        if base < cursor:
            diags.add(
                "CODE004",
                f"rotating block of op {op} (r[{base}..{base + width - 1}]) "
                f"overlaps the previous block ending at r[{cursor - 1}]",
                unit=unit,
                obj=f"op {op}",
                op=op,
                base=base,
                width=width,
            )
        cursor = max(cursor, base + width)
    if cursor > allocation.size:
        diags.add(
            "CODE004",
            f"rotating file size {allocation.size} smaller than the "
            f"{cursor} registers the blocks occupy",
            unit=unit,
            obj="rotating file",
            size=allocation.size,
            needed=cursor,
        )


def _check_emitted(
    graph: DependenceGraph,
    schedule: Schedule,
    code,
    unit: str,
    diags: Diagnostics,
) -> None:
    ii = schedule.ii
    stage_count = schedule.stage_count
    ramp = (stage_count - 1) * ii
    if code.stage_count != stage_count or code.ii != ii:
        diags.add(
            "CODE005",
            f"emitted code declares II={code.ii}, stages={code.stage_count}; "
            f"schedule has II={ii}, stages={stage_count}",
            unit=unit,
            obj="pipelined code",
            code_ii=code.ii,
            code_stages=code.stage_count,
            ii=ii,
            stages=stage_count,
        )
        return
    if len(code.prologue) != ramp or len(code.epilogue) != ramp:
        diags.add(
            "CODE005",
            f"ramp length mismatch: prologue {len(code.prologue)} / "
            f"epilogue {len(code.epilogue)} rows, expected {ramp}",
            unit=unit,
            obj="pipelined code",
            prologue=len(code.prologue),
            epilogue=len(code.epilogue),
            ramp=ramp,
        )
        return
    expected_prologue: List[List[Tuple[int, int]]] = [[] for _ in range(ramp)]
    expected_epilogue: List[List[Tuple[int, int]]] = [[] for _ in range(ramp)]
    expected_fill = 0
    expected_drain = 0
    for operation in graph.real_operations():
        op = operation.index
        t = schedule.times[op]
        j = 0
        while t + j * ii < ramp:
            expected_prologue[t + j * ii].append((op, j))
            expected_fill += 1
            j += 1
        for lag in range(1, t // ii + 1):
            expected_epilogue[t - lag * ii].append((op, lag))
            expected_drain += 1
    fill, drain = code.instance_count()
    if (fill, drain) != (expected_fill, expected_drain):
        diags.add(
            "CODE005",
            f"instance counts (prologue {fill}, epilogue {drain}) differ "
            f"from the ramp equations (prologue {expected_fill}, "
            f"epilogue {expected_drain})",
            unit=unit,
            obj="pipelined code",
            prologue=fill,
            epilogue=drain,
            expected_prologue=expected_fill,
            expected_epilogue=expected_drain,
        )
    for cycle in range(ramp):
        if sorted(code.prologue[cycle]) != sorted(expected_prologue[cycle]):
            diags.add(
                "CODE006",
                f"prologue cycle {cycle} issues {sorted(code.prologue[cycle])}, "
                f"schedule requires {sorted(expected_prologue[cycle])}",
                unit=unit,
                obj=f"prologue cycle {cycle}",
                cycle=cycle,
            )
        if sorted(code.epilogue[cycle]) != sorted(expected_epilogue[cycle]):
            diags.add(
                "CODE006",
                f"epilogue cycle {cycle} issues {sorted(code.epilogue[cycle])}, "
                f"schedule requires {sorted(expected_epilogue[cycle])}",
                unit=unit,
                obj=f"epilogue cycle {cycle}",
                cycle=cycle,
            )
