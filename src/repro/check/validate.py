"""The independent schedule validator (translation-validation style).

Everything here is re-derived from first principles: the dependence-edge
inequality ``t(succ) - t(pred) >= delay - II * distance`` is evaluated
directly from the graph's edges, and modulo-reservation-table occupancy is
rebuilt cell by cell from the *raw* ``(resource, offset)`` uses of each
chosen reservation table.  No conflict-probe code is shared with the
scheduler's bitmask fast path (:class:`repro.machine.CompiledMaskSet`):
a miscompiled mask produces a schedule this validator rejects.

Acyclic list schedules (``Schedule.modulo`` is False) are validated on a
*linear* cycle grid instead — folding their resource uses modulo
``II = SL`` would manufacture wrap-around conflicts the real (one
iteration at a time) execution never has.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.check.diagnostics import Diagnostics
from repro.core.schedule import Schedule
from repro.ir.graph import DependenceGraph


def check_schedule(
    graph: DependenceGraph,
    machine,
    schedule: Schedule,
    *,
    codegen: bool = False,
    unit: Optional[str] = None,
    diagnostics: Optional[Diagnostics] = None,
) -> Diagnostics:
    """Validate ``schedule`` against its graph and machine from scratch.

    Emits ``SCHED001``–``SCHED010`` findings; with ``codegen=True`` (and a
    structurally sound modulo schedule) the codegen artifact cross-checks
    of :mod:`repro.check.codegen` run as well (``CODE001``–``CODE006``).
    """
    diags = diagnostics if diagnostics is not None else Diagnostics()
    unit = unit if unit is not None else f"loop {graph.name!r}"
    ii = schedule.ii
    times = schedule.times
    modulo = getattr(schedule, "modulo", True)

    if ii < 1:
        diags.add("SCHED001", f"II must be >= 1, got {ii}", unit=unit, ii=ii)
        return diags
    missing = False
    for op in range(graph.n_ops):
        if op not in times:
            diags.add(
                "SCHED002",
                f"operation {op} is not scheduled",
                unit=unit,
                obj=f"op {op}",
                op=op,
            )
            missing = True
    if missing:
        return diags

    if times[graph.START] != 0:
        diags.add(
            "SCHED003",
            f"START scheduled at {times[graph.START]}, expected 0",
            unit=unit,
            obj="START",
            time=times[graph.START],
        )
    for op in sorted(times):
        if times[op] < 0:
            diags.add(
                "SCHED004",
                f"operation {op} scheduled at negative time {times[op]}",
                unit=unit,
                obj=f"op {op}",
                op=op,
                time=times[op],
            )

    # Re-derive every dependence-edge inequality from the edge list; the
    # required separation delay - II*distance is computed here, not taken
    # from any scheduler bookkeeping.
    for edge in graph.edges:
        gap = times[edge.succ] - times[edge.pred]
        required = edge.delay - ii * edge.distance
        if gap < required:
            diags.add(
                "SCHED005",
                f"dependence violated: {edge.describe()} "
                f"(gap {gap} < required {required} at II={ii})",
                unit=unit,
                obj=f"edge {edge.pred} -> {edge.succ}",
                pred=edge.pred,
                succ=edge.succ,
                kind=edge.kind.value,
                distance=edge.distance,
                delay=edge.delay,
                gap=gap,
                required=required,
            )

    _check_reservations(graph, machine, schedule, modulo, unit, diags)

    if codegen and modulo and diags.ok:
        from repro.check.codegen import check_codegen

        check_codegen(graph, schedule, unit=unit, diagnostics=diags)
    return diags


def _check_reservations(
    graph: DependenceGraph,
    machine,
    schedule: Schedule,
    modulo: bool,
    unit: str,
    diags: Diagnostics,
) -> None:
    """Rebuild reservation occupancy from raw uses and report conflicts.

    For a modulo schedule the cell grid is ``(resource, (t + offset) mod
    II)``; for a linear (list) schedule it is ``(resource, t + offset)``
    on the unbounded cycle axis.
    """
    ii = schedule.ii
    times = schedule.times
    cells: Dict[Tuple[str, int], int] = {}
    for op in range(graph.n_ops):
        operation = graph.operation(op)
        alternative = schedule.alternatives.get(op)
        if operation.is_pseudo:
            if alternative is not None:
                diags.add(
                    "SCHED006",
                    f"pseudo-operation {op} holds resources",
                    unit=unit,
                    obj=f"op {op}",
                    op=op,
                )
            continue
        if alternative is None:
            diags.add(
                "SCHED007",
                f"operation {op} has no reservation alternative",
                unit=unit,
                obj=f"op {op}",
                op=op,
            )
            continue
        # A compiled alternative may appear in hand-built schedules; use
        # its raw source table — never its masks.
        table = getattr(alternative, "table", alternative)
        opcode = machine.opcode(operation.opcode)
        if table not in opcode.alternatives:
            diags.add(
                "SCHED008",
                f"operation {op} uses alternative {table.name!r} "
                f"not belonging to opcode {operation.opcode!r}",
                unit=unit,
                obj=f"op {op}",
                op=op,
                alternative=table.name,
                opcode=operation.opcode,
            )
            continue
        for resource, offset in table.uses:
            if modulo:
                cell = (resource, (times[op] + offset) % ii)
            else:
                cell = (resource, times[op] + offset)
            holder = cells.get(cell)
            if holder is None:
                cells[cell] = op
            elif modulo:
                diags.add(
                    "SCHED009",
                    f"modulo constraint violated: operations {holder} and "
                    f"{op} both use {resource!r} at slot {cell[1]} (II={ii})",
                    unit=unit,
                    obj=f"resource {resource}",
                    ops=[holder, op],
                    resource=resource,
                    slot=cell[1],
                    ii=ii,
                )
            else:
                diags.add(
                    "SCHED010",
                    f"linear reservation conflict: operations {holder} and "
                    f"{op} both use {resource!r} at cycle {cell[1]}",
                    unit=unit,
                    obj=f"resource {resource}",
                    ops=[holder, op],
                    resource=resource,
                    cycle=cell[1],
                )
