"""Corrupted-schedule fixtures: one mutant per diagnostic code.

The negative-path regression suite needs proof that every code in the
:data:`~repro.check.diagnostics.CODES` registry actually fires where it
should.  Each :class:`Mutant` here builds a *correct* artifact with the
production pipeline, corrupts it in one precisely-targeted way, runs the
matching checker, and returns the resulting diagnostics; the suite
asserts ``mutant.code`` is among them (a clean base run is asserted
separately, so the mutation — not the fixture — is what trips the code).

Mutants never mutate shared fixtures in place: schedules, allocations and
code layouts are cloned before corruption, so the memoized base artifacts
stay pristine across mutants.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Optional, Tuple

from repro.check.diagnostics import Diagnostics
from repro.core.schedule import Schedule

#: Source of the memoized base fixtures: a dot product (acyclic resource
#: pressure plus the ``s`` recurrence) and a first-order memory
#: recurrence whose store -> load distance-1 dependence makes memory
#: timing mistakes observable.
DOT_SOURCE = "for i in n:\n    s = s + x[i] * y[i]\n"
RECURRENCE_SOURCE = "for i in n:\n    x[i] = z[i] * (y[i] - x[i-1])\n"


@dataclass(frozen=True)
class Mutant:
    """One targeted corruption and the diagnostic code it must trip."""

    name: str
    code: str
    description: str
    build: Callable[[], Diagnostics]

    def run(self) -> Diagnostics:
        """Build the corrupted artifact and run the matching checker."""
        return self.build()


# ----------------------------------------------------------------------
# Memoized base fixtures (never corrupted in place)
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def _machine(name: str):
    from repro.machine import cydra5, single_alu_machine

    return {"cydra5": cydra5, "single_alu": single_alu_machine}[name]()


@lru_cache(maxsize=None)
def _compiled(machine_name: str, source: str):
    from repro.loopir import compile_loop_full

    return compile_loop_full(source, _machine(machine_name))


@lru_cache(maxsize=None)
def _scheduled(machine_name: str, source: str):
    from repro.core import modulo_schedule

    lowered = _compiled(machine_name, source)
    result = modulo_schedule(lowered.graph, _machine(machine_name))
    return lowered, result.schedule


def _clone(schedule: Schedule, **overrides) -> Schedule:
    """A corruptible copy of a schedule (times/alternatives dicts copied)."""
    fields = {
        "graph": schedule.graph,
        "ii": schedule.ii,
        "times": dict(schedule.times),
        "alternatives": dict(schedule.alternatives),
        "modulo": schedule.modulo,
    }
    fields.update(overrides)
    return Schedule(**fields)


def _real_ops(graph) -> Tuple[int, ...]:
    return tuple(op.index for op in graph.real_operations())


def _flow_edge(graph, min_delay: int = 1):
    """A distance-0 flow edge between real operations, delay >= min_delay."""
    from repro.ir.edges import DependenceKind

    for edge in graph.edges:
        if (
            edge.kind is DependenceKind.FLOW
            and edge.distance == 0
            and edge.delay >= min_delay
            and not graph.operation(edge.pred).is_pseudo
            and not graph.operation(edge.succ).is_pseudo
        ):
            return edge
    raise AssertionError("fixture loop has no qualifying flow edge")


def _checked(schedule: Schedule, machine_name: str) -> Diagnostics:
    from repro.check.validate import check_schedule

    return check_schedule(schedule.graph, _machine(machine_name), schedule)


# ----------------------------------------------------------------------
# Schedule mutants (SCHED001 - SCHED010)
# ----------------------------------------------------------------------


def _mutant_sched001() -> Diagnostics:
    _, schedule = _scheduled("single_alu", DOT_SOURCE)
    return _checked(_clone(schedule, ii=0), "single_alu")


def _mutant_sched002() -> Diagnostics:
    _, schedule = _scheduled("single_alu", DOT_SOURCE)
    bad = _clone(schedule)
    del bad.times[_real_ops(bad.graph)[0]]
    return _checked(bad, "single_alu")


def _mutant_sched003() -> Diagnostics:
    _, schedule = _scheduled("single_alu", DOT_SOURCE)
    bad = _clone(schedule)
    bad.times[bad.graph.START] = 1
    return _checked(bad, "single_alu")


def _mutant_sched004() -> Diagnostics:
    _, schedule = _scheduled("single_alu", DOT_SOURCE)
    bad = _clone(schedule)
    bad.times[_real_ops(bad.graph)[0]] = -1
    return _checked(bad, "single_alu")


def _mutant_sched005() -> Diagnostics:
    _, schedule = _scheduled("single_alu", DOT_SOURCE)
    bad = _clone(schedule)
    edge = _flow_edge(bad.graph)
    bad.times[edge.succ] = bad.times[edge.pred] + edge.delay - 1
    return _checked(bad, "single_alu")


def _mutant_sched006() -> Diagnostics:
    _, schedule = _scheduled("single_alu", DOT_SOURCE)
    bad = _clone(schedule)
    donor = _real_ops(bad.graph)[0]
    bad.alternatives[bad.graph.START] = bad.alternatives[donor]
    return _checked(bad, "single_alu")


def _mutant_sched007() -> Diagnostics:
    _, schedule = _scheduled("single_alu", DOT_SOURCE)
    bad = _clone(schedule)
    bad.alternatives[_real_ops(bad.graph)[0]] = None
    return _checked(bad, "single_alu")


def _mutant_sched008() -> Diagnostics:
    from repro.machine.resources import ReservationTable

    _, schedule = _scheduled("single_alu", DOT_SOURCE)
    bad = _clone(schedule)
    machine = _machine("single_alu")
    bad.alternatives[_real_ops(bad.graph)[0]] = ReservationTable(
        "bogus", [(machine.resources[0], 0)]
    )
    return _checked(bad, "single_alu")


def _mutant_sched009() -> Diagnostics:
    # On single_alu every real operation books the one ALU at offset 0,
    # so any two co-scheduled operations collide in the MRT.
    _, schedule = _scheduled("single_alu", DOT_SOURCE)
    bad = _clone(schedule)
    first, second = _real_ops(bad.graph)[:2]
    bad.times[second] = bad.times[first]
    return _checked(bad, "single_alu")


def _mutant_sched010() -> Diagnostics:
    from repro.baselines import list_schedule

    lowered = _compiled("single_alu", DOT_SOURCE)
    schedule = list_schedule(lowered.graph, _machine("single_alu"))
    assert not schedule.modulo
    bad = _clone(schedule)
    first, second = _real_ops(bad.graph)[:2]
    bad.times[second] = bad.times[first]
    return _checked(bad, "single_alu")


# ----------------------------------------------------------------------
# Codegen-artifact mutants (CODE001 - CODE006)
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def _codegen_artifacts():
    """(graph, schedule, kernel, allocation, code) for the cydra5 dot loop."""
    from repro.codegen.emit import emit_pipelined_code
    from repro.codegen.mve import modulo_variable_expansion
    from repro.codegen.rotation import allocate_rotating

    lowered, schedule = _scheduled("cydra5", DOT_SOURCE)
    graph = lowered.graph
    kernel = modulo_variable_expansion(graph, schedule)
    allocation = allocate_rotating(graph, schedule)
    code = emit_pipelined_code(graph, schedule, use_mve=False)
    return graph, schedule, kernel, allocation, code


def _checked_codegen(kernel=None, allocation=None, code=None) -> Diagnostics:
    from repro.check.codegen import check_codegen

    graph, schedule, base_kernel, base_allocation, base_code = (
        _codegen_artifacts()
    )
    return check_codegen(
        graph,
        schedule,
        kernel=kernel if kernel is not None else base_kernel,
        allocation=allocation if allocation is not None else base_allocation,
        code=code if code is not None else base_code,
    )


def _clone_allocation(allocation):
    from repro.codegen.rotation import RotatingAllocation

    return RotatingAllocation(
        bases=dict(allocation.bases),
        widths=dict(allocation.widths),
        size=allocation.size,
    )


def _clone_code(code):
    from repro.codegen.emit import PipelinedCode

    return PipelinedCode(
        ii=code.ii,
        stage_count=code.stage_count,
        prologue=[list(row) for row in code.prologue],
        kernel=code.kernel,
        epilogue=[list(row) for row in code.epilogue],
    )


def _mutant_code001() -> Diagnostics:
    from repro.codegen.mve import MVEKernel

    _, schedule, kernel, _, _ = _codegen_artifacts()
    assert kernel.unroll >= 2, "fixture loop must need MVE unrolling"
    starved = MVEKernel(ii=schedule.ii, unroll=1, rows=kernel.rows[: schedule.ii])
    return _checked_codegen(kernel=starved)


def _mutant_code002() -> Diagnostics:
    from repro.codegen.mve import MVEKernel

    _, _, kernel, _, _ = _codegen_artifacts()
    rows = [list(row) for row in kernel.rows]
    donor = next(i for i, row in enumerate(rows) if row)
    rows[(donor + 1) % len(rows)].append(rows[donor].pop(0))
    shifted = MVEKernel(ii=kernel.ii, unroll=kernel.unroll, rows=rows)
    return _checked_codegen(kernel=shifted)


def _mutant_code003() -> Diagnostics:
    from repro.check.codegen import _value_lifetimes

    graph, schedule, _, allocation, _ = _codegen_artifacts()
    lifetimes = _value_lifetimes(graph, schedule)
    victim = next(
        op
        for op, (start, end) in sorted(lifetimes.items())
        if end - start > schedule.ii and allocation.widths.get(op, 0) >= 2
    )
    shrunk = _clone_allocation(allocation)
    shrunk.widths[victim] = (
        lifetimes[victim][1] - lifetimes[victim][0] - 1
    ) // schedule.ii
    return _checked_codegen(allocation=shrunk)


def _mutant_code004() -> Diagnostics:
    _, _, _, allocation, _ = _codegen_artifacts()
    overlapped = _clone_allocation(allocation)
    ops = sorted(overlapped.bases)
    assert len(ops) >= 2, "fixture loop must allocate at least two blocks"
    overlapped.bases[ops[1]] = overlapped.bases[ops[0]]
    return _checked_codegen(allocation=overlapped)


def _mutant_code005() -> Diagnostics:
    _, _, _, _, code = _codegen_artifacts()
    truncated = _clone_code(code)
    assert truncated.prologue, "fixture loop must have a multi-stage ramp"
    truncated.prologue.pop()
    return _checked_codegen(code=truncated)


def _mutant_code006() -> Diagnostics:
    _, _, _, _, code = _codegen_artifacts()
    swapped = _clone_code(code)
    rows = swapped.prologue
    first, second = next(
        (i, j)
        for i in range(len(rows))
        for j in range(i + 1, len(rows))
        if sorted(rows[i]) != sorted(rows[j])
    )
    rows[first], rows[second] = rows[second], rows[first]
    return _checked_codegen(code=swapped)


# ----------------------------------------------------------------------
# Graph-lint mutants (GRAPH001 - GRAPH005)
# ----------------------------------------------------------------------


def _fresh_graph():
    from repro.ir.graph import DependenceGraph

    return DependenceGraph(_machine("single_alu"), name="mutant")


def _mutant_graph001() -> Diagnostics:
    from repro.check.lint import lint_graph

    graph = _fresh_graph()
    graph.add_operation("add", dest="a", srcs=())
    return lint_graph(graph)  # never sealed


def _mutant_graph002() -> Diagnostics:
    from repro.check.lint import lint_graph
    from repro.ir.edges import DependenceKind

    graph = _fresh_graph()
    a = graph.add_operation("add", dest="a", srcs=())
    b = graph.add_operation("add", dest="b", srcs=("a",))
    # add has latency 1 on single_alu: a flow delay of 0 is below the
    # hardware minimum, not merely off-model.
    graph.add_edge(a, b, DependenceKind.FLOW, distance=0, delay=0)
    return lint_graph(graph.seal())


def _mutant_graph003() -> Diagnostics:
    from repro.check.lint import lint_graph
    from repro.ir.edges import DependenceKind

    graph = _fresh_graph()
    a = graph.add_operation("add", dest="a", srcs=("b",))
    b = graph.add_operation("add", dest="b", srcs=("a",))
    graph.add_edge(a, b, DependenceKind.FLOW, distance=0)
    graph.add_edge(b, a, DependenceKind.FLOW, distance=0)
    return lint_graph(graph.seal())


def _mutant_graph004() -> Diagnostics:
    from repro.check.lint import lint_graph

    graph = _fresh_graph()
    graph.add_operation(
        "add", dest="a", srcs=("phantom",), operands=(("livein", "x"),)
    )
    return lint_graph(graph.seal())


def _mutant_graph005() -> Diagnostics:
    from repro.check.lint import lint_graph

    graph = _fresh_graph()
    graph.add_operation("add", dest="s", srcs=())
    graph.add_operation("add", dest="s", srcs=())
    return lint_graph(graph.seal())


# ----------------------------------------------------------------------
# Machine-lint mutants (MACH001 - MACH004)
# ----------------------------------------------------------------------


def _lint_synthetic(machine) -> Diagnostics:
    from repro.check.lint import lint_machine

    return lint_machine(machine)


def _mutant_mach001() -> Diagnostics:
    from repro.machine.machine import MachineDescription
    from repro.machine.opcodes import Opcode
    from repro.machine.resources import ReservationTable

    return _lint_synthetic(
        MachineDescription(
            "mutant_dead_resource",
            ("alu", "spare_bus"),
            [Opcode("add", 1, [ReservationTable("alu", [("alu", 0)])])],
        )
    )


def _mutant_mach002() -> Diagnostics:
    from repro.machine.machine import MachineDescription
    from repro.machine.opcodes import Opcode
    from repro.machine.resources import ReservationTable

    return _lint_synthetic(
        MachineDescription(
            "mutant_dominated",
            ("alu", "bus"),
            [
                Opcode(
                    "add",
                    1,
                    [
                        ReservationTable("lean", [("alu", 0)]),
                        ReservationTable("greedy", [("alu", 0), ("bus", 0)]),
                    ],
                )
            ],
        )
    )


def _mutant_mach003() -> Diagnostics:
    from repro.machine.machine import MachineDescription
    from repro.machine.opcodes import Opcode
    from repro.machine.resources import ReservationTable

    return _lint_synthetic(
        MachineDescription(
            "mutant_late_hold",
            ("alu",),
            [
                Opcode(
                    "add", 1, [ReservationTable("alu", [("alu", 0), ("alu", 1)])]
                )
            ],
        )
    )


def _mutant_mach004() -> Diagnostics:
    from repro.machine.machine import MachineDescription
    from repro.machine.opcodes import Opcode
    from repro.machine.resources import ReservationTable

    return _lint_synthetic(
        MachineDescription(
            "mutant_zero_latency",
            ("alu",),
            [Opcode("nop", 0, [ReservationTable("alu", [("alu", 0)])])],
        )
    )


# ----------------------------------------------------------------------
# MinDist mutants (MIND001 - MIND002)
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def _chain_mindist():
    """The MinDist closure of a 3-op chain at II=1 (numpy array, copied)."""
    import numpy as np

    from repro.core.mindist import compute_mindist
    from repro.ir.edges import DependenceKind

    graph = _fresh_graph()
    a = graph.add_operation("add", dest="a", srcs=())
    b = graph.add_operation("add", dest="b", srcs=("a",))
    c = graph.add_operation("add", dest="c", srcs=("b",))
    graph.add_edge(a, b, DependenceKind.FLOW, distance=0)
    graph.add_edge(b, c, DependenceKind.FLOW, distance=0)
    graph.seal()
    dist, _ = compute_mindist(graph, 1)
    return np.array(dist), a, c


def _mutant_mind001() -> Diagnostics:
    import numpy as np

    from repro.check.lint import check_mindist_matrix

    dist, a, c = _chain_mindist()
    corrupt = np.array(dist)
    # a -> c is transitive (delay 1 + 1 through b); shaving it breaks
    # closure with b as the witness.
    corrupt[a, c] = dist[a, c] - 1
    return check_mindist_matrix(corrupt, 1)


def _mutant_mind002() -> Diagnostics:
    from repro.check.lint import check_mindist_matrix

    dist, _, _ = _chain_mindist()
    # The chain is acyclic: every II is feasible and the true RecMII is 1.
    # Claiming RecMII=2 asserts II=1 must be infeasible, contradicting the
    # matrix's non-positive diagonal.
    return check_mindist_matrix(dist, 1, 2, rec_mii_exact=True)


# ----------------------------------------------------------------------
# Simulator mutants (SIM001 - SIM002)
# ----------------------------------------------------------------------


def _mutant_sim001() -> Diagnostics:
    from repro.simulator import check_equivalence

    lowered, schedule = _scheduled("cydra5", RECURRENCE_SOURCE)
    bad = _clone(schedule)
    store = next(
        op.index
        for op in bad.graph.real_operations()
        if op.opcode == "store"
    )
    # Deferring the store's commit past the next iterations' x[i-1] loads
    # makes them sample stale memory: the final arrays diverge from the
    # sequential oracle.  Operand-readiness is untouched (the store only
    # reads *later*), so this is a pure value mismatch.
    bad.times[store] += 5 * bad.ii
    report = check_equivalence(lowered, bad, n=8)
    return report.diagnostics()


def _mutant_sim002() -> Diagnostics:
    from repro.simulator import check_equivalence

    lowered, schedule = _scheduled("cydra5", DOT_SOURCE)
    bad = _clone(schedule)
    edge = _flow_edge(bad.graph, min_delay=2)
    bad.times[edge.succ] = bad.times[edge.pred]
    report = check_equivalence(lowered, bad, n=6)
    return report.diagnostics()


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------

MUTANTS: Tuple[Mutant, ...] = (
    Mutant("zero-ii", "SCHED001", "II forced to 0", _mutant_sched001),
    Mutant(
        "dropped-op", "SCHED002", "a real operation unscheduled",
        _mutant_sched002,
    ),
    Mutant(
        "shifted-start", "SCHED003", "START moved off cycle 0",
        _mutant_sched003,
    ),
    Mutant(
        "negative-time", "SCHED004", "an operation at cycle -1",
        _mutant_sched004,
    ),
    Mutant(
        "squeezed-edge", "SCHED005",
        "a flow consumer moved inside its producer's delay",
        _mutant_sched005,
    ),
    Mutant(
        "greedy-pseudo", "SCHED006", "START given a reservation table",
        _mutant_sched006,
    ),
    Mutant(
        "lost-alternative", "SCHED007",
        "a real operation's alternative dropped", _mutant_sched007,
    ),
    Mutant(
        "foreign-alternative", "SCHED008",
        "an alternative from outside the opcode", _mutant_sched008,
    ),
    Mutant(
        "mrt-collision", "SCHED009",
        "two operations folded onto one MRT cell", _mutant_sched009,
    ),
    Mutant(
        "linear-collision", "SCHED010",
        "two list-scheduled operations co-issued on one ALU",
        _mutant_sched010,
    ),
    Mutant(
        "starved-unroll", "CODE001", "MVE kernel with unroll forced to 1",
        _mutant_code001,
    ),
    Mutant(
        "shifted-kernel-row", "CODE002",
        "a kernel operation moved to the wrong row", _mutant_code002,
    ),
    Mutant(
        "narrow-block", "CODE003",
        "a rotating block narrower than its lifetime", _mutant_code003,
    ),
    Mutant(
        "overlapping-blocks", "CODE004",
        "two rotating blocks given the same base", _mutant_code004,
    ),
    Mutant(
        "truncated-ramp", "CODE005", "the prologue's last row dropped",
        _mutant_code005,
    ),
    Mutant(
        "swapped-ramp-rows", "CODE006", "two prologue rows exchanged",
        _mutant_code006,
    ),
    Mutant(
        "unsealed-graph", "GRAPH001", "a graph that was never sealed",
        _mutant_graph001,
    ),
    Mutant(
        "sub-minimum-delay", "GRAPH002",
        "a flow edge with delay below the hardware minimum",
        _mutant_graph002,
    ),
    Mutant(
        "zero-distance-circuit", "GRAPH003",
        "a two-op circuit with no carried distance", _mutant_graph003,
    ),
    Mutant(
        "dangling-vreg", "GRAPH004",
        "a source register no operation defines", _mutant_graph004,
    ),
    Mutant(
        "double-assignment", "GRAPH005", "one vreg assigned by two ops",
        _mutant_graph005,
    ),
    Mutant(
        "dead-resource", "MACH001", "a resource no table references",
        _mutant_mach001,
    ),
    Mutant(
        "dominated-alternative", "MACH002",
        "an alternative strictly worse than an earlier one",
        _mutant_mach002,
    ),
    Mutant(
        "late-hold", "MACH003",
        "a resource held at the opcode's latency", _mutant_mach003,
    ),
    Mutant(
        "zero-latency", "MACH004", "an opcode with latency 0",
        _mutant_mach004,
    ),
    Mutant(
        "shaved-closure", "MIND001",
        "a transitive MinDist entry reduced below closure",
        _mutant_mind001,
    ),
    Mutant(
        "wrong-recmii", "MIND002",
        "a feasible matrix labelled with an infeasible RecMII",
        _mutant_mind002,
    ),
    Mutant(
        "stale-store", "SIM001",
        "a store deferred past its dependent loads", _mutant_sim001,
    ),
    Mutant(
        "early-consumer", "SIM002",
        "a consumer issued before its producer completes", _mutant_sim002,
    ),
)

#: code -> mutants keyed for the per-code regression assertion.
MUTANTS_BY_CODE: Dict[str, Tuple[Mutant, ...]] = {}
for _mutant in MUTANTS:
    MUTANTS_BY_CODE.setdefault(_mutant.code, ())
    MUTANTS_BY_CODE[_mutant.code] += (_mutant,)


def mutant(name: str) -> Optional[Mutant]:
    """Look up one mutant by name."""
    for candidate in MUTANTS:
        if candidate.name == name:
            return candidate
    return None
