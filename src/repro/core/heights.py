"""HeightR: the scheduling priority function (Section 3.2, Figure 5a).

HeightR extends the classic height-based list-scheduling priority across
iteration boundaries: a successor ``Q`` at dependence distance ``D`` is
effectively ``II * D`` cycles further from STOP, so

    HeightR(STOP) = 0
    HeightR(P)    = max over successors Q of
                        HeightR(Q) + Delay(P, Q) - II * Distance(P, Q)

The implicit equations are solved SCC by SCC: Tarjan emits components in
reverse topological order (successors first), so by the time a component is
processed all of its external successors' heights are known; within a
non-trivial component the equations are iterated to a fixpoint, which
terminates because II >= RecMII guarantees no positive-weight circuit.

HeightR(P) equals MinDist[P, STOP]; the property-based tests check this
equivalence against :func:`repro.core.mindist.compute_mindist`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.scc import shared_components
from repro.core.stats import Counters
from repro.ir.graph import DependenceGraph, GraphError

_NEG_INF = float("-inf")


def height_r(
    graph: DependenceGraph,
    ii: int,
    counters: Optional[Counters] = None,
) -> List[int]:
    """Solve the HeightR equations for a sealed graph at interval ``ii``.

    Returns heights indexed by operation index.  Raises
    :class:`~repro.ir.graph.GraphError` if ``ii`` admits a positive-weight
    circuit (i.e. ``ii`` is below the RecMII), since the equations then
    have no finite solution.
    """
    if not graph.sealed:
        raise GraphError(f"graph {graph.name!r} must be sealed")
    if ii < 1:
        raise ValueError(f"II must be >= 1, got {ii}")
    heights: List[float] = [_NEG_INF] * graph.n_ops
    heights[graph.stop] = 0

    # Every candidate II re-solves the heights, but the component
    # structure is II-independent — the memoized SCC run is shared.
    for component in shared_components(graph, counters):
        members = set(component)
        # Seed every member from its external (already solved) successors.
        for p in component:
            best = heights[p]
            for edge in graph.succ_edges(p):
                if edge.succ in members:
                    continue
                if counters is not None:
                    counters.heightr_inner += 1
                candidate = heights[edge.succ] + edge.delay - ii * edge.distance
                if candidate > best:
                    best = candidate
            heights[p] = best
        if len(component) == 1:
            continue
        # Fixpoint iteration over the internal edges.  With no positive
        # circuit, longest paths stabilize within |component| passes.
        for _ in range(len(component) + 1):
            changed = False
            for p in component:
                for edge in graph.succ_edges(p):
                    if edge.succ not in members:
                        continue
                    if counters is not None:
                        counters.heightr_inner += 1
                    candidate = (
                        heights[edge.succ] + edge.delay - ii * edge.distance
                    )
                    if candidate > heights[p]:
                        heights[p] = candidate
                        changed = True
            if not changed:
                break
        else:
            raise GraphError(
                f"graph {graph.name!r}: HeightR diverges at II={ii} "
                "(II is below the RecMII)"
            )
    return [int(h) if h != _NEG_INF else 0 for h in heights]
