"""Instrumentation counters for the complexity study (Section 4.4, Table 4).

The paper characterizes the empirical computational complexity of modulo
scheduling by counting how many times each algorithm's innermost loop
executes as a function of N, the number of operations in the loop.  The
:class:`Counters` object threads through every core algorithm and counts
the same quantities:

* ``mindist_inner`` — innermost-loop executions of ComputeMinDist,
* ``mindist_closure_inner`` — innermost-loop executions of the parametric
  closure build (one N³-equivalent pass per graph, amortized over every
  II the search probes),
* ``mindist_parametric_evals`` — MinDist matrices materialized from an
  already-built parametric closure (each one O(N²·P), not N³),
* ``heightr_inner`` — edge relaxations when solving the HeightR equations,
* ``estart_preds`` — predecessor edges examined while computing Estart,
* ``findtimeslot_iters`` — time slots examined by FindTimeSlot,
* ``ops_scheduled`` / ``ops_unscheduled`` — Schedule/Unschedule calls,
* ``ops_forced`` — placements that used Figure 4's forced-slot rule,
* ``resmii_steps`` — alternative/resource inspections in the ResMII pass,
* ``scc_steps`` — vertex+edge visits during SCC identification.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class Counters:
    """Mutable counter bundle; all algorithms accept one optionally."""

    mindist_inner: int = 0
    mindist_invocations: int = 0
    mindist_closure_inner: int = 0
    mindist_parametric_evals: int = 0
    heightr_inner: int = 0
    estart_preds: int = 0
    findtimeslot_iters: int = 0
    ops_scheduled: int = 0
    ops_unscheduled: int = 0
    ops_forced: int = 0
    resmii_steps: int = 0
    scc_steps: int = 0
    ii_attempts: int = 0

    def merge(self, other: "Counters") -> None:
        """Accumulate another counter bundle into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def snapshot(self) -> dict:
        """Plain-dict copy, convenient for DataFrame-less tabulation."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: Shared no-op sink used when the caller does not ask for instrumentation.
#: A real Counters is cheap, so we simply use one and throw it away.
def _sink() -> Counters:
    return Counters()
