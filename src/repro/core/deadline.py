"""Cooperative wall-clock deadlines for the long-running core algorithms.

Rau's corpus evaluation only terminates because every loop does; a
pathological recurrence can send ComputeMinDist's doubling search or the
II escalation of ``modulo_schedule`` into minutes of work.  A
:class:`Deadline` is the cooperative half of the engine's watchdog: the
corpus worker creates one per loop and threads it through ``compute_mii``
and ``modulo_schedule``, whose inner loops call :meth:`Deadline.check` at
natural safepoints (once per MinDist invocation, once per II attempt,
every few scheduling steps).  When the budget is gone the algorithm
raises :class:`DeadlineExceeded` instead of running on, and the engine
classifies, retries or degrades the loop (see
:mod:`repro.analysis.resilience`).

The object is deliberately dumb — a monotonic-clock expiry and nothing
else — so checks cost one clock read and the core algorithms stay free of
any policy.  ``deadline=None`` everywhere means "no limit" and is the
default, keeping untimed callers on a branch-predictable fast path.
"""

from __future__ import annotations

import time
from typing import Optional


class DeadlineExceeded(RuntimeError):
    """A cooperative wall-clock deadline expired mid-algorithm."""


class Deadline:
    """A wall-clock budget checked cooperatively from algorithm inner loops.

    Parameters
    ----------
    seconds:
        The budget, measured from construction time on the monotonic
        clock (immune to wall-clock adjustments).
    """

    __slots__ = ("seconds", "_expires_at")

    def __init__(self, seconds: float) -> None:
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        self.seconds = float(seconds)
        self._expires_at = time.monotonic() + self.seconds

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self._expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        """True once the budget is used up."""
        return time.monotonic() >= self._expires_at

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is used up.

        ``where`` names the algorithm phase for the error message (the
        failure taxonomy only needs the type, but quarantine records are
        meant to be read by humans).
        """
        if time.monotonic() >= self._expires_at:
            suffix = f" in {where}" if where else ""
            raise DeadlineExceeded(
                f"wall-clock deadline of {self.seconds:.3g}s exceeded{suffix}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline({self.seconds!r}, remaining={self.remaining():.3f})"


def check_deadline(deadline: Optional[Deadline], where: str = "") -> None:
    """``deadline.check(where)`` tolerating ``None`` (the common case)."""
    if deadline is not None:
        deadline.check(where)
