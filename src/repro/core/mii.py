"""The minimum initiation interval: MII = max(ResMII, RecMII) (Section 2).

*ResMII* (Section 2.1) totals resource usage per iteration.  Exact
computation is a bin-packing problem, so the paper's heuristic is used:
operations are visited in increasing order of their number of alternatives
(degrees of freedom), and for each operation the alternative yielding the
lowest partial ResMII is selected.

*RecMII* (Section 2.2) is the smallest II for which no recurrence circuit
requires an operation to follow itself.  It is computed with ComputeMinDist
on one SCC at a time, seeding each SCC's search with the running MII, using
the paper's search discipline: try the seed, grow by a doubling increment
until feasible, then binary-search between the last infeasible and first
feasible candidates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.deadline import Deadline, check_deadline
from repro.core.mindist import (
    MinDistMemo,
    compute_mindist,
    mindist_feasible,
)
from repro.core.scc import nontrivial_components, shared_components
from repro.core.stats import Counters
from repro.ir.graph import DependenceGraph, GraphError


@dataclass
class MIIResult:
    """Outcome of the MII computation, with the per-part bounds.

    Attributes
    ----------
    res_mii:
        The resource-constrained bound.
    rec_mii:
        The recurrence-constrained bound.  When computed with
        ``exact=False`` this is only known to be ``<= mii`` (the production
        compiler never learns the true RecMII when it is below ResMII).
    mii:
        ``max(res_mii, rec_mii)``.
    components:
        All SCCs of the graph (reverse topological order).
    rec_mii_exact:
        Whether ``rec_mii`` is the true RecMII.
    mindist_memo:
        The :class:`~repro.core.mindist.MinDistMemo` accumulated while
        searching for the RecMII (``None`` when the result was rebuilt
        from a serialized payload).  Downstream consumers pass it back
        into :func:`repro.core.mindist.schedule_length_lower_bound` so
        the feasible-II matrices are reused instead of recomputed.
    """

    res_mii: int
    rec_mii: int
    mii: int
    components: List[List[int]] = field(default_factory=list)
    rec_mii_exact: bool = True
    mindist_memo: Optional[MinDistMemo] = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_nontrivial_sccs(self) -> int:
        """Count of SCCs containing more than one operation."""
        return sum(1 for c in self.components if len(c) > 1)

    @property
    def scc_sizes(self) -> List[int]:
        """All SCC sizes, largest first."""
        return sorted((len(c) for c in self.components), reverse=True)


def res_mii(
    graph: DependenceGraph,
    machine,
    counters: Optional[Counters] = None,
) -> int:
    """Resource-constrained MII via the paper's bin-packing heuristic."""
    ops = sorted(
        graph.real_operations(),
        key=lambda op: (machine.opcode(op.opcode).n_alternatives, op.index),
    )
    usage: Dict[str, int] = {}
    peak = 0
    for op in ops:
        alternatives = machine.opcode(op.opcode).alternatives
        best_alt = None
        best_peak = None
        for alt in alternatives:
            alt_peak = peak
            for resource, count in alt.usage_count().items():
                alt_peak = max(alt_peak, usage.get(resource, 0) + count)
                if counters is not None:
                    counters.resmii_steps += 1
            if best_peak is None or alt_peak < best_peak:
                best_peak = alt_peak
                best_alt = alt
        for resource, count in best_alt.usage_count().items():
            usage[resource] = usage.get(resource, 0) + count
        peak = best_peak
    return max(1, peak)


def _min_feasible_ii(
    graph: DependenceGraph,
    ops: Sequence[int],
    start: int,
    counters: Optional[Counters],
    memo: Optional[MinDistMemo] = None,
    deadline: Optional[Deadline] = None,
) -> int:
    """Smallest II >= start with no positive MinDist diagonal over ``ops``.

    Implements the paper's search: try the seed; on failure grow the
    candidate by a doubling increment; finally binary-search between the
    last unsuccessful and first successful candidates.  Probes go through
    ``memo`` when one is supplied, so no (ops, II) pair is ever
    recomputed — neither within this search (the doubling and
    binary-search phases share one memo) nor by later consumers of the
    same memo.  ``deadline`` is checked before every probe (each one is
    a full Floyd-Warshall pass over the SCC), so a watchdog can stop a
    pathological doubling search between candidates.

    With a parametric memo (``memo.impl == "parametric"``) there is no
    search at all: the closure over ``ops`` answers in closed form with
    the smallest II where the diagonal envelope crosses ≤ 0.  Because
    feasibility is monotone in II (every diagonal line has distance
    ≥ 0), ``max(seed, crossing)`` is exactly what the doubling/binary
    discipline converges to.
    """
    ops = list(ops)
    if memo is not None and memo.impl == "parametric":
        closure = memo.closure(ops, counters, deadline)
        crossing = closure.crossing()
        if math.isinf(crossing):
            raise GraphError(
                f"graph {graph.name!r} has a zero-distance dependence "
                "circuit; no initiation interval is feasible"
            )
        return max(max(1, start), int(crossing))

    def feasible(ii: int) -> bool:
        """No positive MinDist diagonal over ``ops`` at this II."""
        check_deadline(deadline, "mindist doubling search")
        if memo is not None:
            return memo.feasible(ii, ops, counters, deadline)
        dist, _ = compute_mindist(graph, ii, ops, counters, deadline)
        return mindist_feasible(dist)

    ii = max(1, start)
    if feasible(ii):
        return ii
    # Any elementary circuit has total delay at most the sum of positive
    # edge delays, so a circuit with distance >= 1 is satisfied once II
    # reaches that sum.  Beyond it, infeasibility means a zero-distance
    # circuit, which no II can fix.
    ceiling = max(
        ii + 1,
        sum(
            max(0, e.delay)
            for op in ops
            for e in graph.succ_edges(op)
        )
        + 1,
    )
    last_bad = ii
    increment = 1
    while True:
        ii = last_bad + increment
        if ii > ceiling:
            ii = ceiling
        if feasible(ii):
            break
        if ii >= ceiling:
            raise GraphError(
                f"graph {graph.name!r} has a zero-distance dependence circuit; "
                "no initiation interval is feasible"
            )
        last_bad = ii
        increment *= 2
    lo, hi = last_bad + 1, ii
    while lo < hi:
        mid = (lo + hi) // 2
        if feasible(mid):
            hi = mid
        else:
            lo = mid + 1
    return hi


def rec_mii(
    graph: DependenceGraph,
    start: int = 1,
    counters: Optional[Counters] = None,
    components: Optional[List[List[int]]] = None,
    memo: Optional[MinDistMemo] = None,
    deadline: Optional[Deadline] = None,
) -> int:
    """Recurrence-constrained MII, computed one SCC at a time.

    ``start`` seeds the search (the production compiler seeds with ResMII;
    pass 1 for the exact RecMII).  Reflexive dependence edges on trivial
    SCCs are handled analytically as ceil(delay / distance).  ``memo``
    (a :class:`~repro.core.mindist.MinDistMemo` over ``graph``) caches
    every feasibility probe's MinDist matrix.
    """
    best = max(1, start)
    if components is None:
        components = shared_components(graph, counters)
    for op in range(graph.n_ops):
        for edge in graph.succ_edges(op):
            if edge.succ != op or edge.delay <= 0:
                continue
            if edge.distance == 0:
                raise GraphError(
                    f"graph {graph.name!r}: zero-distance self-dependence on "
                    f"operation {op} with positive delay"
                )
            best = max(best, math.ceil(edge.delay / edge.distance))
    # Each SCC pays its own (small) MinDist analysis; with a parametric
    # memo, _min_feasible_ii answers from one per-SCC closure in closed
    # form instead of a doubling/binary search of per-II passes.
    for component in nontrivial_components(components):
        best = _min_feasible_ii(
            graph, component, best, counters, memo, deadline
        )
    return best


def rec_mii_whole_graph(
    graph: DependenceGraph,
    start: int = 1,
    counters: Optional[Counters] = None,
    memo: Optional[MinDistMemo] = None,
) -> int:
    """RecMII computed on the whole graph at once (no SCC decomposition).

    Exists for the ablation study of Section 2.2's observation that
    per-SCC computation makes the O(N^3) ComputeMinDist affordable; the
    answer is identical to :func:`rec_mii`, only the cost differs (which
    is why the memo is opt-in here: the ablation must measure real work).
    """
    return _min_feasible_ii(
        graph, list(range(graph.n_ops)), start, counters, memo
    )


def compute_mii(
    graph: DependenceGraph,
    machine,
    counters: Optional[Counters] = None,
    exact: bool = True,
    obs=None,
    deadline: Optional[Deadline] = None,
    mindist_impl: Optional[str] = None,
) -> MIIResult:
    """Compute MII = max(ResMII, RecMII) for a sealed graph.

    With ``exact=True`` the true RecMII is computed (seeding the SCC
    searches from 1), which the evaluation statistics need.  With
    ``exact=False`` the production short-cut is used: the search is seeded
    with ResMII, so the reported ``rec_mii`` is only a lower bound when it
    does not exceed ResMII — but ``mii`` is identical either way.

    ``obs`` (an optional :class:`repro.obs.ObsContext`) receives one
    ``mii`` span with ``mii.scc``/``mii.res``/``mii.rec`` children, the
    resulting bounds attached as attributes, plus the deterministic
    ``mii.mindist_cache_hits`` counter (probes served by the
    :class:`~repro.core.mindist.MinDistMemo` instead of a fresh
    Floyd-Warshall pass).  The memo rides out on the result's
    ``mindist_memo`` so the schedule-length bounds reuse it.

    ``mindist_impl`` picks how MinDist queries are answered
    (``"parametric"`` closes the envelope semiring once per graph and
    reads the RecMII off the diagonal in closed form; ``"fw"`` is the
    per-II Floyd-Warshall oracle) — explicit arg > ``REPRO_MINDIST_IMPL``
    environment override > parametric.  The result is identical either
    way; only the cost differs.
    """
    from repro.obs.context import NULL_OBS

    obs = obs if obs is not None else NULL_OBS
    if not graph.sealed:
        raise GraphError(f"graph {graph.name!r} must be sealed before MII")
    memo = MinDistMemo(graph, impl=mindist_impl)
    with obs.span("mii", graph=graph.name, exact=exact) as mii_span:
        with obs.span("mii.scc"):
            components = shared_components(graph, counters)
        with obs.span("mii.res") as res_span:
            res = res_mii(graph, machine, counters)
            res_span.set("res_mii", res)
        with obs.span("mii.rec") as rec_span:
            if exact:
                rec = rec_mii(graph, 1, counters, components, memo, deadline)
                mii = max(res, rec)
            else:
                mii = rec_mii(
                    graph, res, counters, components, memo, deadline
                )
                rec = mii
            rec_span.set("rec_mii", rec)
            rec_span.set("mindist_cache_hits", memo.hits)
        obs.counter("mii.mindist_cache_hits").inc(memo.hits)
        obs.counter("mindist.parametric_evals").inc(memo.parametric_evals)
        mii_span.set("mii", mii)
    return MIIResult(
        res_mii=res,
        rec_mii=rec,
        mii=mii,
        components=components,
        rec_mii_exact=exact,
        mindist_memo=memo,
    )
