"""Pre-scheduling unrolling for fractional MII (Section 1's unroll step).

The MII is an integer, but the quantity it rounds up from need not be:
a recurrence circuit with delay 7 at distance 2 only demands 3.5 cycles
per iteration, yet II must be at least 4 — a 14% throughput loss.  The
paper's remedy: "if the percentage degradation in rounding it up ... is
unacceptably high, the body of the loop may be unrolled prior to
scheduling".  Unrolling by 2 turns the same circuit into delay 14 at
distance 1, and II = 14 for the double body is exactly 7 cycles per
original iteration.

:func:`unroll_for_modulo` replicates the body while *preserving* the
cross-iteration dependence structure (unlike the
unroll-before-scheduling baseline, which drops edges at the back-edge
barrier): an edge at distance ``d`` from copy ``c`` lands in copy
``(c + d) mod u`` at distance ``(c + d) div u``.
:func:`recommend_unroll` then searches small factors for the best
amortized MII.

This is a scheduling-level transformation: the unrolled graph schedules
and validates normally, but it does not carry the front end's simulator
metadata (the paper applies the same caveat — unrolling happens before
modulo scheduling proper, and code generation handles the result).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.mii import compute_mii
from repro.ir.graph import DependenceGraph, GraphError


def unroll_for_modulo(graph: DependenceGraph, factor: int) -> DependenceGraph:
    """Replicate the body ``factor`` times, folding dependence distances.

    The result is semantically the same loop stepping ``factor`` original
    iterations per new iteration: every circuit's delay-to-distance ratio
    is preserved, so ``MII(unrolled) / factor`` can approach the
    fractional bound that the un-unrolled integral MII rounds up.
    """
    if not graph.sealed:
        raise GraphError(f"graph {graph.name!r} must be sealed")
    if factor < 1:
        raise ValueError(f"unroll factor must be >= 1, got {factor}")
    unrolled = DependenceGraph(
        graph._latencies,
        name=f"{graph.name}#modulo-unroll{factor}",
        delay_model=graph.delay_model,
    )
    index_map: Dict[tuple, int] = {}
    for copy in range(factor):
        for op in graph.real_operations():
            index_map[(op.index, copy)] = unrolled.add_operation(
                op.opcode,
                dest=f"{op.dest}.{copy}" if op.dest else None,
                srcs=tuple(f"{s}.{copy}" for s in op.srcs),
                predicate=f"{op.predicate}.{copy}" if op.predicate else None,
            )
    for edge in graph.edges:
        pred_op = graph.operation(edge.pred)
        succ_op = graph.operation(edge.succ)
        if pred_op.is_pseudo or succ_op.is_pseudo:
            continue
        for copy in range(factor):
            target = copy + edge.distance
            unrolled.add_edge(
                index_map[(edge.pred, copy)],
                index_map[(edge.succ, target % factor)],
                edge.kind,
                distance=target // factor,
                delay=edge.delay,
            )
    return unrolled.seal()


@dataclass
class UnrollRecommendation:
    """Outcome of the pre-unroll search.

    Attributes
    ----------
    factor:
        The recommended unroll factor (1 = do not unroll).
    amortized_mii:
        ``MII(unrolled by factor) / factor`` — cycles per *original*
        iteration at the recommendation.
    amortized_by_factor:
        The full search record, factor -> amortized MII.
    """

    factor: int
    amortized_mii: float
    amortized_by_factor: Dict[int, float] = field(default_factory=dict)

    @property
    def degradation_without_unrolling(self) -> float:
        """Fractional throughput lost by scheduling the body as-is."""
        base = self.amortized_by_factor[1]
        best = min(self.amortized_by_factor.values())
        return (base - best) / best if best else 0.0


def recommend_unroll(
    graph: DependenceGraph,
    machine,
    max_factor: int = 4,
    tolerance: float = 0.02,
) -> UnrollRecommendation:
    """Search unroll factors 1..max for the best amortized MII.

    Returns the *smallest* factor whose amortized MII is within
    ``tolerance`` of the best found — unrolling costs code size, so ties
    go to less replication.
    """
    if max_factor < 1:
        raise ValueError(f"max_factor must be >= 1, got {max_factor}")
    amortized: Dict[int, float] = {}
    for factor in range(1, max_factor + 1):
        candidate = (
            graph if factor == 1 else unroll_for_modulo(graph, factor)
        )
        amortized[factor] = (
            compute_mii(candidate, machine, exact=True).mii / factor
        )
    best = min(amortized.values())
    for factor in sorted(amortized):
        if amortized[factor] <= best * (1.0 + tolerance):
            return UnrollRecommendation(
                factor=factor,
                amortized_mii=amortized[factor],
                amortized_by_factor=amortized,
            )
    raise AssertionError("unreachable: the best factor satisfies its own bound")
