"""Schedule reservation tables, linear and modulo (Sections 2.1 and 3.1).

When an operation is scheduled, its opcode's reservation table is
translated by the scheduled time and overlaid on the *schedule reservation
table*; the placement is legal only if no cell is already occupied.
Unscheduling reverses the overlay.

The modulo variant (the MRT of the literature) folds time into
``time mod II``: a resource used at time T is recorded at slot T mod II, so
a conflict at T implies conflicts at every T + k*II, and the table need
only be II rows long.  The linear variant is the ordinary acyclic table
used by list scheduling.

Two implementations live here, behaviourally identical:

* :class:`ModuloReservations` / :class:`LinearReservations` — the
  **bitmask** tables (the default).  Every resource gets a stable bit
  row; the whole schedule reservation table is one occupancy integer
  (modulo) or one integer per resource row (linear), each operation
  holds its placement as a mask, and a conflict probe is a single AND
  against a mask precompiled per (table, II) — see
  :func:`repro.machine.resources.compile_alternative` and the
  per-(machine, II) cache :meth:`repro.machine.machine.MachineDescription.compiled_masks`.
* :class:`DictModuloReservations` / :class:`DictLinearReservations` —
  the original dict-of-cells tables, kept as the differential **oracle**
  (``REPRO_MRT_IMPL=dict`` or ``mrt_impl="dict"`` on the schedulers).

Both agree on every observable: ``conflicts``, ``conflicting_ops``,
``occupancy``, raised :class:`ReservationConflict` messages, and the
byte-exact ``render`` output (property-tested in
``tests/core/test_mrt_differential.py``).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.machine.resources import (
    CompiledAlternative,
    ReservationTable,
    compile_alternative,
    compile_linear_uses,
)


class ReservationConflict(RuntimeError):
    """Raised when a reservation would double-book a resource."""


#: The selectable implementations; "mask" is the default fast path.
MRT_IMPLS = ("mask", "dict")

#: Environment override consulted when no explicit ``mrt_impl`` is given.
MRT_IMPL_ENV = "REPRO_MRT_IMPL"


def resolve_mrt_impl(impl: Optional[str] = None) -> str:
    """Pick the MRT implementation: explicit arg > environment > mask."""
    choice = impl if impl is not None else os.environ.get(MRT_IMPL_ENV, "mask")
    if choice not in MRT_IMPLS:
        raise ValueError(
            f"unknown MRT implementation {choice!r}; choose from {MRT_IMPLS}"
        )
    return choice


def _render_kernel(
    cells: Dict[Tuple[str, int], int], ii: int, resources: Iterable[str]
) -> str:
    """ASCII kernel view: one row per modulo slot, one column per resource.

    Shared by both MRT implementations so their output is byte-identical.
    """
    resources = list(resources)
    width = max([len(r) for r in resources] + [6])
    header = "slot  " + "  ".join(r.ljust(width) for r in resources)
    lines = [header, "-" * len(header)]
    for slot in range(ii):
        row = []
        for resource in resources:
            holder = cells.get((resource, slot))
            row.append(("" if holder is None else f"op{holder}").ljust(width))
        lines.append(f"{slot:>4}  " + "  ".join(row))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Bitmask implementation (the default)


class ModuloReservations:
    """The modulo reservation table on one occupancy integer.

    Bit ``1 + row * II + slot`` stands for the cell ``(resource, slot)``;
    ``conflicts`` is ``occupancy & mask[time % II]``.  Bit 0 is the
    sentinel, permanently set in the occupancy: self-conflicting tables
    carry it in every slot mask, so the same single AND rejects them
    with no branch on the probe path.  Resource rows come from an
    optional :class:`~repro.machine.machine.CompiledMaskSet` (machine
    declaration order — what the schedulers use) and grow on demand for
    tables probing resources the set has never seen, so the machine-less
    construction ``ModuloReservations(ii)`` keeps working.

    ``checks`` / ``fastpath_checks`` count ``conflicts`` probes and how
    many were answered by the single-AND fast path (all of them, thanks
    to the sentinel); the scheduler folds them into the
    ``mrt.conflict_checks`` / ``mrt.mask_fastpath`` obs metrics.
    ``cell_probes`` exists for parity with the dict oracle and stays 0
    here.
    """

    #: The always-set occupancy bit that answers self-conflict probes.
    SENTINEL = 1

    def __init__(self, ii: int, mask_set=None) -> None:
        if ii < 1:
            raise ValueError(f"II must be >= 1, got {ii}")
        self.ii = ii
        self._occ = self.SENTINEL
        self._held: Dict[int, int] = {}
        if mask_set is not None:
            self._rows: Dict[str, int] = dict(mask_set.rows)
            self._row_names: List[str] = list(mask_set.row_names)
        else:
            self._rows = {}
            self._row_names = []
        # id(table) -> CompiledAlternative; the compiled entry pins the
        # table alive, so ids cannot be recycled under us.
        self._local: Dict[int, CompiledAlternative] = {}
        self.checks = 0
        self.slowpath_checks = 0
        self.cell_probes = 0

    @property
    def fastpath_checks(self) -> int:
        """Probes answered by the single-AND fast path (kept as a derived
        quantity so ``conflicts`` pays for one counter, not two).  The
        sentinel encoding routes every probe — self-conflict included —
        through the AND, so this equals ``checks`` here."""
        return self.checks - self.slowpath_checks

    # -- compilation ---------------------------------------------------

    def _row(self, resource: str) -> int:
        row = self._rows.get(resource)
        if row is None:
            row = self._rows[resource] = len(self._row_names)
            self._row_names.append(resource)
        return row

    def _compiled(self, table) -> CompiledAlternative:
        if type(table) is CompiledAlternative:
            return table
        compiled = self._local.get(id(table))
        if compiled is None:
            for resource, _ in table.uses:
                self._row(resource)
            compiled = compile_alternative(table, self._rows, self.ii)
            self._local[id(table)] = compiled
        return compiled

    # -- the public MRT protocol ---------------------------------------

    def conflicts(self, table, time: int) -> bool:
        """Would placing ``table`` at ``time`` collide with the schedule?

        Includes *self*-conflicts: under modulo folding, two uses of the
        same resource at offsets differing by a multiple of II land in
        the same cell, making the table unplaceable at this II no matter
        what else is scheduled — detected once at mask-compile time and
        encoded as the sentinel bit, so this probe is branch-free.
        """
        self.checks += 1
        compiled = (
            table
            if type(table) is CompiledAlternative
            else self._compiled(table)
        )
        return (self._occ & compiled.slot_masks[time % self.ii]) != 0

    def self_conflicting(self, table) -> bool:
        """True when the table folds onto itself at this interval."""
        return self._compiled(table).self_conflicting

    def first_free_slot(
        self, tables: Sequence, min_time: int
    ) -> Tuple[Optional[int], Optional[int]]:
        """Batched FindTimeSlot kernel over one II-wide window.

        Scans the window ``[min_time, min_time + II - 1]`` across *all*
        of ``tables`` at once and returns ``(time, index)`` for the
        earliest conflict-free placement — the index is the position in
        ``tables`` of the alternative that fits, with ties at one time
        going to the earliest-declared alternative — or ``(None, None)``
        when the whole window conflicts for every table.

        Instead of probing II × len(tables) (slot, alternative) pairs,
        each table's conflict-slot bit-vector is built by OR-ing one
        rotation of the relevant row's occupancy bits per distinct
        ``(row, offset % II)`` use (``CompiledAlternative.row_uses``):
        bit ``s`` of ``rotr(row_occ, offset)`` says "issue slot ``s``
        collides through this use".  Rotating the free vector by
        ``min_time % II`` anchors bit 0 at ``min_time``, and the lowest
        set bit is the first free slot.  The result — and the probe
        accounting in :attr:`checks` — is exactly what the scalar
        time-major, alternative-minor scan would have produced, so the
        ``mrt.conflict_checks`` / ``mrt.mask_fastpath`` telemetry and
        the ``findtimeslot_iters`` complexity counter stay
        implementation-independent.
        """
        ii = self.ii
        full = (1 << ii) - 1
        start = min_time % ii
        occ = self._occ >> 1  # drop the sentinel: row r starts at bit r*ii
        best_w: Optional[int] = None
        best_idx: Optional[int] = None
        for idx, table in enumerate(tables):
            compiled = (
                table
                if type(table) is CompiledAlternative
                else self._compiled(table)
            )
            if compiled.self_conflicting:
                continue
            conflict = 0
            for row, offset in compiled.row_uses:
                row_occ = (occ >> (row * ii)) & full
                if offset:
                    row_occ = (
                        (row_occ >> offset) | (row_occ << (ii - offset))
                    ) & full
                conflict |= row_occ
                if conflict == full:
                    break
            free = ~conflict & full
            if not free:
                continue
            if start:
                free = ((free >> start) | (free << (ii - start))) & full
            w = (free & -free).bit_length() - 1
            if best_w is None or w < best_w:
                best_w, best_idx = w, idx
                if w == 0:
                    break
        # As-if probe accounting: the scalar scan would have issued one
        # ``conflicts`` call per (slot, alternative) pair up to the hit.
        if best_w is None:
            self.checks += ii * len(tables)
            return None, None
        self.checks += best_w * len(tables) + best_idx + 1
        return min_time + best_w, best_idx

    def conflicting_ops(self, tables: Iterable, time: int) -> Set[int]:
        """Operations occupying any cell any of ``tables`` would use.

        This is the displacement set of Section 3.4, computed by
        intersecting every operation's held mask with the union of the
        probing tables' masks.
        """
        probe = 0
        for table in tables:
            probe |= self._compiled(table).slot_masks[time % self.ii]
        return {op for op, held in self._held.items() if held & probe}

    def reserve(self, op: int, table, time: int) -> None:
        """Overlay ``table`` at ``time`` on behalf of operation ``op``."""
        if op in self._held:
            raise ReservationConflict(f"operation {op} already holds cells")
        compiled = self._compiled(table)
        mask = compiled.slot_masks[time % self.ii]
        # The sentinel bit makes this one test cover occupied cells and
        # self-conflicting tables alike.
        if self._occ & mask:
            self._raise_reserve_conflict(op, compiled, time)
        self._occ |= mask
        self._held[op] = mask

    def _raise_reserve_conflict(
        self, op: int, compiled: CompiledAlternative, time: int
    ) -> None:
        """Report the first offending use, exactly as the oracle would."""
        seen = 0
        for resource, offset in compiled.uses:
            slot = (time + offset) % self.ii
            bit = 1 << (1 + self._rows[resource] * self.ii + slot)
            if self._occ & bit:
                holder = next(
                    o for o, held in self._held.items() if held & bit
                )
                raise ReservationConflict(
                    f"operation {op} at time {time}: {resource!r} slot "
                    f"{slot} already held by operation {holder}"
                )
            if seen & bit:
                raise ReservationConflict(
                    f"operation {op} at time {time}: table "
                    f"{compiled.name!r} self-conflicts on {resource!r} slot "
                    f"{slot} at this interval"
                )
            seen |= bit
        raise AssertionError("reserve conflict vanished during reporting")

    def release(self, op: int) -> None:
        """Remove all reservations held by operation ``op`` (idempotent)."""
        self._occ &= ~self._held.pop(op, 0)

    def holds(self, op: int) -> bool:
        """Whether operation ``op`` currently holds any cells."""
        return op in self._held

    def occupancy(self) -> Dict[Tuple[str, int], int]:
        """Cell map decoded from the held masks, for validation/rendering."""
        cells: Dict[Tuple[str, int], int] = {}
        for op, held in self._held.items():
            while held:
                low = held & -held
                position = low.bit_length() - 2  # undo the sentinel shift
                cells[
                    (self._row_names[position // self.ii], position % self.ii)
                ] = op
                held ^= low
        return cells

    def render(self, resources: Iterable[str]) -> str:
        """ASCII kernel view, byte-identical to the dict oracle's."""
        return _render_kernel(self.occupancy(), self.ii, resources)


class LinearReservations:
    """An ordinary (acyclic) schedule reservation table on bit-grids.

    Time never folds here, so each resource row is one unbounded Python
    integer (bit ``t`` = cycle ``t``) and a table compiles once into
    per-row offset masks that are merely shifted by the issue time — the
    growable linear bit-grid the list scheduler probes.
    """

    def __init__(self, machine=None) -> None:
        if machine is not None:
            self._rows: Dict[str, int] = {
                name: row for row, name in enumerate(machine.resources)
            }
            self._row_names: List[str] = list(machine.resources)
        else:
            self._rows = {}
            self._row_names = []
        self._occ: List[int] = [0] * len(self._row_names)
        # op -> list of (row, shifted mask) it occupies
        self._held: Dict[int, List[Tuple[int, int]]] = {}
        # id(table) -> (table, ((row, offset_mask), ...)); the entry pins
        # the table alive, so ids cannot be recycled under us.
        self._local: Dict[int, Tuple[ReservationTable, Tuple]] = {}
        self.checks = 0
        self.cell_probes = 0

    @property
    def fastpath_checks(self) -> int:
        """Every linear probe is a bit-grid AND (no slow path exists)."""
        return self.checks

    # -- compilation ---------------------------------------------------

    def _compiled(self, table: ReservationTable) -> Tuple:
        entry = self._local.get(id(table))
        if entry is None:
            for resource, _ in table.uses:
                if resource not in self._rows:
                    self._rows[resource] = len(self._row_names)
                    self._row_names.append(resource)
                    self._occ.append(0)
            entry = (table, compile_linear_uses(table, self._rows))
            self._local[id(table)] = entry
        return entry[1]

    # -- the public MRT protocol ---------------------------------------

    def conflicts(self, table: ReservationTable, time: int) -> bool:
        """Would placing ``table`` at ``time`` collide with the schedule?"""
        self.checks += 1
        occ = self._occ
        for row, mask in self._compiled(table):
            if occ[row] & (mask << time):
                return True
        return False

    def self_conflicting(self, table: ReservationTable) -> bool:
        """Never true without folding: duplicate uses are rejected at
        table construction."""
        return False

    def conflicting_ops(
        self, tables: Iterable[ReservationTable], time: int
    ) -> Set[int]:
        """Operations occupying any cell any of ``tables`` would use."""
        probe: Dict[int, int] = {}
        for table in tables:
            for row, mask in self._compiled(table):
                probe[row] = probe.get(row, 0) | (mask << time)
        return {
            op
            for op, held in self._held.items()
            if any(probe.get(row, 0) & mask for row, mask in held)
        }

    def reserve(self, op: int, table: ReservationTable, time: int) -> None:
        """Overlay ``table`` at ``time`` on behalf of operation ``op``."""
        if op in self._held:
            raise ReservationConflict(f"operation {op} already holds cells")
        compiled = self._compiled(table)
        occ = self._occ
        placed = []
        for row, mask in compiled:
            shifted = mask << time
            if occ[row] & shifted:
                self._raise_reserve_conflict(op, table, time)
            placed.append((row, shifted))
        for row, shifted in placed:
            occ[row] |= shifted
        self._held[op] = placed

    def _raise_reserve_conflict(
        self, op: int, table: ReservationTable, time: int
    ) -> None:
        """Report the first offending use, exactly as the oracle would."""
        for resource, offset in table.uses:
            row = self._rows[resource]
            bit = 1 << (time + offset)
            if self._occ[row] & bit:
                holder = next(
                    o
                    for o, held in self._held.items()
                    if any(r == row and m & bit for r, m in held)
                )
                raise ReservationConflict(
                    f"operation {op} at time {time}: {resource!r} slot "
                    f"{time + offset} already held by operation {holder}"
                )
        raise AssertionError("reserve conflict vanished during reporting")

    def release(self, op: int) -> None:
        """Remove all reservations held by operation ``op`` (idempotent)."""
        for row, mask in self._held.pop(op, ()):
            self._occ[row] &= ~mask

    def holds(self, op: int) -> bool:
        """Whether operation ``op`` currently holds any cells."""
        return op in self._held

    def occupancy(self) -> Dict[Tuple[str, int], int]:
        """Cell map decoded from the held masks, for validation/rendering."""
        cells: Dict[Tuple[str, int], int] = {}
        for op, held in self._held.items():
            for row, mask in held:
                resource = self._row_names[row]
                while mask:
                    low = mask & -mask
                    cells[(resource, low.bit_length() - 1)] = op
                    mask ^= low
        return cells


# ----------------------------------------------------------------------
# Dict-of-cells implementation (the differential oracle)


class DictLinearReservations:
    """The original dict-backed acyclic schedule reservation table."""

    def __init__(self) -> None:
        # (resource, folded time) -> occupying operation index
        self._cells: Dict[Tuple[str, int], int] = {}
        # operation index -> cells it occupies
        self._held: Dict[int, List[Tuple[str, int]]] = {}
        self.checks = 0
        self.fastpath_checks = 0
        self.cell_probes = 0

    def _fold(self, time: int) -> int:
        return time

    # ------------------------------------------------------------------

    def conflicts(self, table: ReservationTable, time: int) -> bool:
        """Would placing ``table`` at ``time`` collide with the schedule?

        Includes *self*-conflicts: under modulo folding, two uses of the
        same resource at offsets differing by a multiple of II land in the
        same cell, making the table unplaceable at this II no matter what
        else is scheduled (e.g. a load whose port is busy at issue and at
        data return cannot be scheduled at II equal to the return offset).
        """
        self.checks += 1
        occupied = self._cells
        fold = self._fold
        cells = set()
        probed = 0
        hit = False
        for resource, offset in table.uses:
            probed += 1
            cell = (resource, fold(time + offset))
            if cell in occupied or cell in cells:
                hit = True
                break
            cells.add(cell)
        self.cell_probes += probed
        return hit

    def self_conflicting(self, table: ReservationTable) -> bool:
        """True when the table folds onto itself at this interval."""
        cells = set()
        for resource, offset in table.uses:
            cell = (resource, self._fold(offset))
            if cell in cells:
                return True
            cells.add(cell)
        return False

    def conflicting_ops(
        self, tables: Iterable[ReservationTable], time: int
    ) -> Set[int]:
        """Operations occupying any cell any of ``tables`` would use.

        This is the displacement set of Section 3.4: when an operation must
        be force-scheduled, everything conflicting with *any* of its
        alternatives is unscheduled.
        """
        occupants: Set[int] = set()
        for table in tables:
            for resource, offset in table.uses:
                self.cell_probes += 1
                holder = self._cells.get((resource, self._fold(time + offset)))
                if holder is not None:
                    occupants.add(holder)
        return occupants

    def reserve(self, op: int, table: ReservationTable, time: int) -> None:
        """Overlay ``table`` at ``time`` on behalf of operation ``op``."""
        if op in self._held:
            raise ReservationConflict(f"operation {op} already holds cells")
        cells: List[Tuple[str, int]] = []
        taken: Set[Tuple[str, int]] = set()
        for resource, offset in table.uses:
            cell = (resource, self._fold(time + offset))
            self.cell_probes += 1
            holder = self._cells.get(cell)
            if holder is not None:
                raise ReservationConflict(
                    f"operation {op} at time {time}: {resource!r} slot "
                    f"{cell[1]} already held by operation {holder}"
                )
            if cell in taken:
                raise ReservationConflict(
                    f"operation {op} at time {time}: table "
                    f"{table.name!r} self-conflicts on {resource!r} slot "
                    f"{cell[1]} at this interval"
                )
            taken.add(cell)
            cells.append(cell)
        for cell in cells:
            self._cells[cell] = op
        self._held[op] = cells

    def release(self, op: int) -> None:
        """Remove all reservations held by operation ``op`` (idempotent)."""
        for cell in self._held.pop(op, ()):
            del self._cells[cell]

    def holds(self, op: int) -> bool:
        """Whether operation ``op`` currently holds any cells."""
        return op in self._held

    def occupancy(self) -> Dict[Tuple[str, int], int]:
        """Copy of the cell map, for validation and rendering."""
        return dict(self._cells)


class DictModuloReservations(DictLinearReservations):
    """The original dict-backed MRT: cells are folded by ``time mod II``."""

    def __init__(self, ii: int) -> None:
        if ii < 1:
            raise ValueError(f"II must be >= 1, got {ii}")
        super().__init__()
        self.ii = ii

    def _fold(self, time: int) -> int:
        return time % self.ii

    def render(self, resources: Iterable[str]) -> str:
        """ASCII kernel view: one row per modulo slot, one column per resource."""
        return _render_kernel(self._cells, self.ii, resources)


# ----------------------------------------------------------------------
# Factories (what the schedulers construct through)


def make_modulo_reservations(
    ii: int, machine=None, impl: Optional[str] = None
):
    """Build an MRT for ``ii``: the bitmask table unless the dict oracle
    was selected (``impl`` argument or ``REPRO_MRT_IMPL``)."""
    if resolve_mrt_impl(impl) == "dict":
        return DictModuloReservations(ii)
    mask_set = None
    if machine is not None:
        compiled_masks = getattr(machine, "compiled_masks", None)
        if compiled_masks is not None:
            mask_set = compiled_masks(ii)
    return ModuloReservations(ii, mask_set=mask_set)


def make_linear_reservations(machine=None, impl: Optional[str] = None):
    """Build a linear schedule reservation table (see
    :func:`make_modulo_reservations` for implementation selection)."""
    if resolve_mrt_impl(impl) == "dict":
        return DictLinearReservations()
    return LinearReservations(machine=machine)
