"""Schedule reservation tables, linear and modulo (Sections 2.1 and 3.1).

When an operation is scheduled, its opcode's reservation table is
translated by the scheduled time and overlaid on the *schedule reservation
table*; the placement is legal only if no cell is already occupied.
Unscheduling reverses the overlay.

The modulo variant (the MRT of the literature) folds time into
``time mod II``: a resource used at time T is recorded at slot T mod II, so
a conflict at T implies conflicts at every T + k*II, and the table need
only be II rows long.  The linear variant is the ordinary acyclic table
used by list scheduling.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.machine.resources import ReservationTable


class ReservationConflict(RuntimeError):
    """Raised when a reservation would double-book a resource."""


class LinearReservations:
    """An ordinary (acyclic) schedule reservation table."""

    def __init__(self) -> None:
        # (resource, folded time) -> occupying operation index
        self._cells: Dict[Tuple[str, int], int] = {}
        # operation index -> cells it occupies
        self._held: Dict[int, List[Tuple[str, int]]] = {}

    def _fold(self, time: int) -> int:
        return time

    # ------------------------------------------------------------------

    def conflicts(self, table: ReservationTable, time: int) -> bool:
        """Would placing ``table`` at ``time`` collide with the schedule?

        Includes *self*-conflicts: under modulo folding, two uses of the
        same resource at offsets differing by a multiple of II land in the
        same cell, making the table unplaceable at this II no matter what
        else is scheduled (e.g. a load whose port is busy at issue and at
        data return cannot be scheduled at II equal to the return offset).
        """
        cells = set()
        for resource, offset in table.uses:
            cell = (resource, self._fold(time + offset))
            if cell in self._cells or cell in cells:
                return True
            cells.add(cell)
        return False

    def self_conflicting(self, table: ReservationTable) -> bool:
        """True when the table folds onto itself at this interval."""
        cells = set()
        for resource, offset in table.uses:
            cell = (resource, self._fold(offset))
            if cell in cells:
                return True
            cells.add(cell)
        return False

    def conflicting_ops(
        self, tables: Iterable[ReservationTable], time: int
    ) -> Set[int]:
        """Operations occupying any cell any of ``tables`` would use.

        This is the displacement set of Section 3.4: when an operation must
        be force-scheduled, everything conflicting with *any* of its
        alternatives is unscheduled.
        """
        occupants: Set[int] = set()
        for table in tables:
            for resource, offset in table.uses:
                holder = self._cells.get((resource, self._fold(time + offset)))
                if holder is not None:
                    occupants.add(holder)
        return occupants

    def reserve(self, op: int, table: ReservationTable, time: int) -> None:
        """Overlay ``table`` at ``time`` on behalf of operation ``op``."""
        if op in self._held:
            raise ReservationConflict(f"operation {op} already holds cells")
        cells = []
        for resource, offset in table.uses:
            cell = (resource, self._fold(time + offset))
            holder = self._cells.get(cell)
            if holder is not None:
                raise ReservationConflict(
                    f"operation {op} at time {time}: {resource!r} slot "
                    f"{cell[1]} already held by operation {holder}"
                )
            if cell in cells:
                raise ReservationConflict(
                    f"operation {op} at time {time}: table "
                    f"{table.name!r} self-conflicts on {resource!r} slot "
                    f"{cell[1]} at this interval"
                )
            cells.append(cell)
        for cell in cells:
            self._cells[cell] = op
        self._held[op] = cells

    def release(self, op: int) -> None:
        """Remove all reservations held by operation ``op`` (idempotent)."""
        for cell in self._held.pop(op, ()):
            del self._cells[cell]

    def holds(self, op: int) -> bool:
        """Whether operation ``op`` currently holds any cells."""
        return op in self._held

    def occupancy(self) -> Dict[Tuple[str, int], int]:
        """Copy of the cell map, for validation and rendering."""
        return dict(self._cells)


class ModuloReservations(LinearReservations):
    """The modulo reservation table: cells are folded by ``time mod II``."""

    def __init__(self, ii: int) -> None:
        if ii < 1:
            raise ValueError(f"II must be >= 1, got {ii}")
        super().__init__()
        self.ii = ii

    def _fold(self, time: int) -> int:
        return time % self.ii

    def render(self, resources: Iterable[str]) -> str:
        """ASCII kernel view: one row per modulo slot, one column per resource."""
        resources = list(resources)
        width = max([len(r) for r in resources] + [6])
        header = "slot  " + "  ".join(r.ljust(width) for r in resources)
        lines = [header, "-" * len(header)]
        for slot in range(self.ii):
            cells = []
            for resource in resources:
                holder = self._cells.get((resource, slot))
                cells.append(("" if holder is None else f"op{holder}").ljust(width))
            lines.append(f"{slot:>4}  " + "  ".join(cells))
        return "\n".join(lines)
