"""Scheduling decision traces: watch the iterative algorithm work.

A :class:`ScheduleTrace` records every decision the inner scheduler makes
— picks, placements, forced placements, displacements — which is how one
*sees* the iterative behavior the paper describes (Sections 3.3-3.4):
operations bouncing out of the schedule when a higher-priority operation
needs their resources, and the forward-progress rule preventing two
operations from displacing each other forever.

Usage::

    trace = ScheduleTrace()
    result = modulo_schedule(graph, machine, trace=trace)
    print(trace.render(graph))
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class PhaseTimer:
    """Wall-clock accounting of named work phases.

    The corpus-evaluation engine (:mod:`repro.analysis.engine`) times each
    per-loop phase — mindist, scheduling, codegen, simulation — with one of
    these and emits the result as a structured timing record.  Entering the
    same phase twice accumulates, so a phase may be split around work that
    belongs elsewhere (e.g. MinDist bounds recomputed after scheduling).
    """

    #: Phase name reserved for the computed sum in :meth:`snapshot`.  A
    #: phase literally named ``"total"`` would silently be overwritten by
    #: the computed total, so the name is rejected up front.
    RESERVED = "total"

    seconds: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a ``with`` block and charge it to ``name`` (accumulating)."""
        self._check_name(name)
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def charge(self, name: str, elapsed: float) -> None:
        """Charge ``elapsed`` seconds to ``name`` directly."""
        self._check_name(name)
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def _check_name(self, name: str) -> None:
        if name == self.RESERVED:
            raise ValueError(
                f"phase name {self.RESERVED!r} is reserved for the "
                "computed total in snapshot()"
            )

    @property
    def total(self) -> float:
        """Sum over all phases."""
        return sum(self.seconds.values())

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict copy of the phase times, with a ``"total"`` key."""
        return {**self.seconds, "total": self.total}


@dataclass(frozen=True)
class TraceEvent:
    """One scheduler decision.

    ``kind`` is one of:

    * ``"attempt"`` — a new IterativeSchedule invocation (``time`` = II);
    * ``"pick"`` — operation chosen by priority (``time`` = Estart);
    * ``"place"`` — scheduled normally (``detail`` = alternative name);
    * ``"force"`` — scheduled via the forward-progress rule;
    * ``"displace"`` — unscheduled (``detail`` = the culprit operation).
    """

    kind: str
    op: int
    time: int
    detail: str = ""

    def render(self) -> str:
        """One-line rendering of the event."""
        text = f"{self.kind:>9} op{self.op:<4} t={self.time}"
        if self.detail:
            text += f"  [{self.detail}]"
        return text


@dataclass
class ScheduleTrace:
    """An append-only log of scheduler decisions."""

    events: List[TraceEvent] = field(default_factory=list)

    # -- recording hooks (called by the scheduler) -----------------------

    def attempt(self, ii: int) -> None:
        """Record the start of an IterativeSchedule attempt at ``ii``."""
        self.events.append(TraceEvent("attempt", -1, ii))

    def pick(self, op: int, estart: int) -> None:
        """Record the priority pop of ``op`` with its computed Estart."""
        self.events.append(TraceEvent("pick", op, estart))

    def place(self, op: int, time: int, alternative: str) -> None:
        """Record a normal (conflict-free) placement."""
        self.events.append(TraceEvent("place", op, time, alternative))

    def force(self, op: int, time: int) -> None:
        """Record a forced placement (Figure 4 fallback)."""
        self.events.append(TraceEvent("force", op, time))

    def displace(self, op: int, time: int, culprit: int) -> None:
        """Record that ``op`` was unscheduled to make room for ``culprit``."""
        self.events.append(TraceEvent("displace", op, time, f"by op{culprit}"))

    # -- queries ----------------------------------------------------------

    def placements(self, op: Optional[int] = None) -> List[TraceEvent]:
        """All place/force events (optionally for one operation)."""
        return [
            e
            for e in self.events
            if e.kind in ("place", "force") and (op is None or e.op == op)
        ]

    def displacements(self) -> List[TraceEvent]:
        """All displacement events."""
        return [e for e in self.events if e.kind == "displace"]

    def forced(self) -> List[TraceEvent]:
        """All forced placements."""
        return [e for e in self.events if e.kind == "force"]

    def attempts(self) -> List[int]:
        """The sequence of candidate IIs tried."""
        return [e.time for e in self.events if e.kind == "attempt"]

    def forward_progress_holds(self) -> bool:
        """No operation is ever re-placed at the time it last occupied.

        This is the invariant Figure 4's forced-slot rule guarantees; the
        property tests check it on every traced run.
        """
        last_time = {}
        current_attempt_key = 0
        for event in self.events:
            if event.kind == "attempt":
                current_attempt_key += 1
                last_time = {}
            elif event.kind == "force":
                key = (current_attempt_key, event.op)
                if last_time.get(key) == event.time:
                    return False
                last_time[key] = event.time
            elif event.kind == "place":
                last_time[(current_attempt_key, event.op)] = event.time
        return True

    def render(self, graph=None, limit: int = 200) -> str:
        """Multi-line log of the first ``limit`` events (with opcodes)."""
        lines = []
        for event in self.events[:limit]:
            line = event.render()
            if graph is not None and event.op >= 0:
                line += f"  {graph.operation(event.op).opcode}"
            lines.append(line)
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)
