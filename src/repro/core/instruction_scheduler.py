"""Instruction-driven iterative modulo scheduling (Section 3.1, footnote).

The paper's scheduler is an *operation* scheduler: pick the highest
priority operation, then find it a time slot.  Its footnote describes the
alternative style — *instruction* scheduling — which "operates by picking
a current time and scheduling as many operations as possible at that time
before moving on to the next time slot", and notes either style fits the
iterative framework, the operation style merely "seems more natural".

This module implements the instruction-driven style inside the same
iterative framework so the two can be compared (see
``benchmarks/bench_ablation_scheduling_style.py``):

* a time cursor sweeps forward; at each cycle, ready operations (Estart
  reached) are placed greedily in priority order while they fit;
* an operation whose entire II-wide window has slid past without a fit
  is *forced* using Figure 4's forward-progress rule, displacing whatever
  conflicts (Section 3.4) — this is what keeps the variant iterative
  rather than a one-pass greedy;
* the same budget discipline applies: each placement costs one step;
* a :class:`repro.core.trace.ScheduleTrace` receives the same pick /
  place / force / displace events as the operation-driven style, so
  traces (and the obs layer built on them) are comparable across styles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.scheduler import IterativeScheduler, _AttemptResult
from repro.machine.resources import ReservationTable


class InstructionDrivenScheduler(IterativeScheduler):
    """IterativeSchedule with a time cursor instead of a priority pop."""

    def run(self, budget: int) -> _AttemptResult:
        """Attempt to schedule every operation within ``budget`` steps."""
        graph = self.graph
        prepared = self._prepare()
        if prepared is not None:
            return prepared
        steps = 0
        self._place(graph.START, 0, None)
        steps += 1

        time = 0
        while self._unscheduled and steps < budget:
            if self.deadline is not None and (steps & 31) == 0:
                self.deadline.check("scheduling")
            placed_someone = False
            # Ready operations at this cycle, most critical first.
            ready = sorted(
                (
                    op
                    for op in self._unscheduled
                    if self._calculate_early_start(op) <= time
                ),
                key=lambda op: (-self.heights[op], op),
            )
            for op in ready:
                if steps >= budget:
                    break
                if op not in self._unscheduled:
                    continue  # displaced by an earlier placement this cycle
                if self._calculate_early_start(op) > time:
                    # An earlier placement this cycle was a predecessor;
                    # the operation is no longer ready at this time.
                    continue
                slot_alt = self._fits_at(op, time)
                if slot_alt is None:
                    continue
                if self.trace is not None:
                    self.trace.pick(op, time)
                self._schedule(op, time, slot_alt)
                steps += 1
                placed_someone = True
            if not self._unscheduled or steps >= budget:
                break
            # Force progress for any operation whose window has closed:
            # every slot in [Estart, Estart + II) has now been swept.
            overdue = [
                op
                for op in self._unscheduled
                if time - self._calculate_early_start(op) >= self.ii - 1
            ]
            if overdue:
                op = min(overdue, key=lambda o: (-self.heights[o], o))
                estart = self._calculate_early_start(op)
                if self.trace is not None:
                    self.trace.pick(op, estart)
                slot, alternative = self._forced_slot(op, estart)
                self._schedule(op, slot, alternative)
                steps += 1
                time = max(time, slot)
                continue
            if not placed_someone:
                time += 1

        return _AttemptResult(
            success=not self._unscheduled,
            times={
                op: t for op, t in enumerate(self._times) if t is not None
            },
            alternatives=dict(self._alts),
            steps=steps,
        )

    # ------------------------------------------------------------------

    def _fits_at(
        self, op: int, time: int
    ) -> Optional[ReservationTable]:
        """First conflict-free alternative at exactly this cycle.

        Returns the alternative, or None when nothing fits (pseudo
        operations always 'fit' and return None through ``_schedule``'s
        pseudo path, so they are special-cased here).
        """
        operation = self.graph.operation(op)
        if operation.is_pseudo:
            self.counters.findtimeslot_iters += 1
            return _PSEUDO_FIT
        # One findtimeslot_iters tick per (slot, alternative) probe,
        # matching the operation scheduler's FindTimeSlot accounting.
        for alternative in self._feasible_alts[operation.opcode]:
            self.counters.findtimeslot_iters += 1
            if not self._mrt.conflicts(alternative, time):
                return alternative
        return None

    def _forced_slot(self, op: int, estart: int):
        """Figure 4's fallback for an operation that never found a slot."""
        operation = self.graph.operation(op)
        if operation.is_pseudo:
            return estart, None
        if op in self._never_scheduled or estart > self._prev_time[op]:
            return estart, None
        return self._prev_time[op] + 1, None

    def _schedule(self, op, slot, alternative) -> None:
        if alternative is _PSEUDO_FIT:
            alternative = None
        super()._schedule(op, slot, alternative)


class _PseudoFit:
    """Sentinel: a pseudo-operation 'fits' anywhere without resources."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<pseudo-fit>"


_PSEUDO_FIT = _PseudoFit()
