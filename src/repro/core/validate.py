"""Static legality checks for modulo schedules (legacy string API).

A legal modulo schedule must satisfy (Section 1):

* every dependence edge: ``t(succ) - t(pred) >= delay - II * distance``
  (so that no intra- or inter-iteration dependence is violated when the
  schedule repeats every II cycles);
* the modulo constraint: overlaying every operation's reservation table at
  ``t mod II`` books no resource cell twice;
* structural sanity: every operation scheduled, START at 0, non-negative
  times, and each chosen alternative belongs to the operation's opcode.

The actual checking now lives in :mod:`repro.check.validate`, which
re-derives every constraint from first principles (sharing no conflict-
probe code with the scheduler) and reports structured
:class:`~repro.check.diagnostics.Diagnostic` records; this module keeps
the original plain-string API on top of it.  The dynamic end-to-end check
(running the generated code on the simulator) lives in
:mod:`repro.simulator`.
"""

from __future__ import annotations

from typing import List

from repro.core.schedule import Schedule
from repro.ir.graph import DependenceGraph


def validate_schedule(
    graph: DependenceGraph, machine, schedule: Schedule
) -> List[str]:
    """Return a list of violation descriptions (empty when legal)."""
    from repro.check.validate import check_schedule

    return check_schedule(graph, machine, schedule).messages()


def assert_valid_schedule(
    graph: DependenceGraph, machine, schedule: Schedule
) -> None:
    """Raise ``AssertionError`` with all violations if the schedule is bad."""
    problems = validate_schedule(graph, machine, schedule)
    if problems:
        raise AssertionError(
            f"illegal schedule for {graph.name!r}:\n  " + "\n  ".join(problems)
        )
