"""Static legality checks for modulo schedules.

A legal modulo schedule must satisfy (Section 1):

* every dependence edge: ``t(succ) - t(pred) >= delay - II * distance``
  (so that no intra- or inter-iteration dependence is violated when the
  schedule repeats every II cycles);
* the modulo constraint: overlaying every operation's reservation table at
  ``t mod II`` books no resource cell twice;
* structural sanity: every operation scheduled, START at 0, non-negative
  times, and each chosen alternative belongs to the operation's opcode.

These checks are independent of the scheduler's own bookkeeping — the MRT
is rebuilt from scratch — so they catch scheduler bugs rather than
inheriting them.  The dynamic end-to-end check (running the generated code
on the simulator) lives in :mod:`repro.simulator`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.schedule import Schedule
from repro.ir.graph import DependenceGraph


def validate_schedule(
    graph: DependenceGraph, machine, schedule: Schedule
) -> List[str]:
    """Return a list of violation descriptions (empty when legal)."""
    problems: List[str] = []
    ii = schedule.ii
    times = schedule.times

    if ii < 1:
        problems.append(f"II must be >= 1, got {ii}")
        return problems
    for op in range(graph.n_ops):
        if op not in times:
            problems.append(f"operation {op} is not scheduled")
    if problems:
        return problems
    if times[graph.START] != 0:
        problems.append(f"START scheduled at {times[graph.START]}, expected 0")
    for op, t in times.items():
        if t < 0:
            problems.append(f"operation {op} scheduled at negative time {t}")

    for edge in graph.edges:
        gap = times[edge.succ] - times[edge.pred]
        required = edge.delay - ii * edge.distance
        if gap < required:
            problems.append(
                f"dependence violated: {edge.describe()} "
                f"(gap {gap} < required {required} at II={ii})"
            )

    cells: Dict[Tuple[str, int], int] = {}
    for op in range(graph.n_ops):
        operation = graph.operation(op)
        alternative = schedule.alternatives.get(op)
        if operation.is_pseudo:
            if alternative is not None:
                problems.append(f"pseudo-operation {op} holds resources")
            continue
        if alternative is None:
            problems.append(f"operation {op} has no reservation alternative")
            continue
        opcode = machine.opcode(operation.opcode)
        if alternative not in opcode.alternatives:
            problems.append(
                f"operation {op} uses alternative {alternative.name!r} "
                f"not belonging to opcode {operation.opcode!r}"
            )
            continue
        for resource, offset in alternative.uses:
            cell = (resource, (times[op] + offset) % ii)
            holder = cells.get(cell)
            if holder is not None:
                problems.append(
                    f"modulo constraint violated: operations {holder} and "
                    f"{op} both use {resource!r} at slot {cell[1]} (II={ii})"
                )
            else:
                cells[cell] = op
    return problems


def assert_valid_schedule(
    graph: DependenceGraph, machine, schedule: Schedule
) -> None:
    """Raise ``AssertionError`` with all violations if the schedule is bad."""
    problems = validate_schedule(graph, machine, schedule)
    if problems:
        raise AssertionError(
            f"illegal schedule for {graph.name!r}:\n  " + "\n  ".join(problems)
        )
