"""Strongly connected components of the dependence graph (Section 2.2).

All operations on a recurrence circuit belong to the same SCC, so the
RecMII can be computed as the largest RecMII over the individual SCCs —
which keeps the O(N^3) ComputeMinDist affordable because real loops have
very few, very small non-trivial SCCs (Section 4.2).

The implementation is an iterative Tarjan so that deep graphs do not hit
Python's recursion limit.  Components are emitted in *reverse topological
order* of the condensation (every successor component appears before its
predecessors), which is exactly the order the HeightR solver wants.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.stats import Counters
from repro.ir.graph import DependenceGraph


def strongly_connected_components(
    graph: DependenceGraph,
    counters: Optional[Counters] = None,
) -> List[List[int]]:
    """Tarjan's algorithm, iteratively, over all operations of ``graph``.

    Returns a list of components (each a list of operation indices) in
    reverse topological order of the condensation.
    """
    n = graph.n_ops
    index_of = [-1] * n
    lowlink = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    components: List[List[int]] = []
    next_index = 0

    for root in range(n):
        if index_of[root] != -1:
            continue
        # Each frame is (vertex, iterator position over its successors).
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            v, edge_pos = work[-1]
            if edge_pos == 0:
                index_of[v] = lowlink[v] = next_index
                next_index += 1
                stack.append(v)
                on_stack[v] = True
                if counters is not None:
                    counters.scc_steps += 1
            succ_edges = graph.succ_edges(v)
            advanced = False
            while edge_pos < len(succ_edges):
                w = succ_edges[edge_pos].succ
                edge_pos += 1
                if counters is not None:
                    counters.scc_steps += 1
                if index_of[w] == -1:
                    work[-1] = (v, edge_pos)
                    work.append((w, 0))
                    advanced = True
                    break
                if on_stack[w]:
                    lowlink[v] = min(lowlink[v], index_of[w])
            if advanced:
                continue
            work.pop()
            if lowlink[v] == index_of[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == v:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
    return components


def shared_components(
    graph: DependenceGraph,
    counters: Optional[Counters] = None,
) -> List[List[int]]:
    """Memoized :func:`strongly_connected_components` for sealed graphs.

    The component structure of a sealed graph never changes, so the
    Tarjan run is paid once per graph and shared by every consumer (the
    MII computation, the HeightR solve of every candidate II, ...).
    The traversal cost is billed to ``counters.scc_steps`` on *every*
    call — as-if accounting, like the batched FindTimeSlot probes — so
    the complexity telemetry is independent of cache warmth.  Unsealed
    graphs fall through to a fresh run.
    """
    cached = getattr(graph, "_scc_cache", None) if graph.sealed else None
    if cached is None:
        probe = Counters()
        components = strongly_connected_components(graph, probe)
        cached = (components, probe.scc_steps)
        if graph.sealed:
            graph._scc_cache = cached
    components, cost = cached
    if counters is not None:
        counters.scc_steps += cost
    return [list(c) for c in components]


def condensation_order(
    graph: DependenceGraph,
    counters: Optional[Counters] = None,
) -> List[List[int]]:
    """Components in topological order (predecessor components first)."""
    return list(reversed(strongly_connected_components(graph, counters)))


def nontrivial_components(
    components: Iterable[Sequence[int]],
) -> List[List[int]]:
    """Filter to the non-trivial SCCs (more than one operation).

    Trivial SCCs with a reflexive dependence edge still constrain the
    RecMII, but analytically (ceil(delay/distance)); the callers handle
    those separately.
    """
    return [list(c) for c in components if len(c) > 1]
