"""ComputeMinDist: the pairwise minimum-interval matrix (Section 2.2).

For a candidate initiation interval II, ``MinDist[i, j]`` is the minimum
permissible interval between the scheduled time of operation ``i`` and the
scheduled time of operation ``j`` *of the same iteration*.  An edge ``e``
from ``i`` to ``j`` contributes ``delay(e) - II * distance(e)``; MinDist is
the all-pairs longest path under these weights (the (max, +) closure),
computed Floyd-Warshall style.

A positive diagonal entry means some recurrence circuit requires an
operation to be scheduled after itself — the II is infeasible.  The RecMII
is the smallest II with no positive diagonal entry.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.deadline import Deadline, check_deadline
from repro.core.stats import Counters
from repro.ir.graph import DependenceGraph

#: The matrix value standing for "no path from i to j".
NO_PATH = -np.inf


def compute_mindist(
    graph: DependenceGraph,
    ii: int,
    ops: Optional[Sequence[int]] = None,
    counters: Optional[Counters] = None,
    deadline: Optional[Deadline] = None,
) -> Tuple[np.ndarray, Dict[int, int]]:
    """Compute the MinDist matrix for ``ops`` (default: all operations).

    Returns ``(matrix, index_map)`` where ``index_map`` maps an operation
    index in the graph to its row/column in the matrix.  Only edges with
    both endpoints inside ``ops`` are considered, which is what the
    SCC-at-a-time RecMII computation needs.

    ``deadline`` (a cooperative :class:`repro.core.deadline.Deadline`)
    is checked once on entry and every 16 Floyd-Warshall pivot rows —
    this N³ pass is the hot spot a wall-clock watchdog must be able to
    interrupt (see :mod:`repro.analysis.resilience`).
    """
    if ii < 1:
        raise ValueError(f"II must be >= 1, got {ii}")
    check_deadline(deadline, "mindist")
    if ops is None:
        ops = range(graph.n_ops)
    ops = list(ops)
    index_map = {op: i for i, op in enumerate(ops)}
    n = len(ops)
    dist = np.full((n, n), NO_PATH, dtype=float)
    for op in ops:
        i = index_map[op]
        for edge in graph.succ_edges(op):
            j = index_map.get(edge.succ)
            if j is None:
                continue
            weight = edge.delay - ii * edge.distance
            if weight > dist[i, j]:
                dist[i, j] = weight

    # Floyd-Warshall in the (max, +) semiring.  The vectorized update
    # performs the same N^3 innermost-loop work the paper counts.
    for k in range(n):
        if deadline is not None and (k & 15) == 0:
            deadline.check("mindist")
        via_k = dist[:, k : k + 1] + dist[k : k + 1, :]
        np.maximum(dist, via_k, out=dist)
    if counters is not None:
        counters.mindist_inner += n * n * n
        counters.mindist_invocations += 1
    return dist, index_map


def mindist_feasible(dist: np.ndarray) -> bool:
    """True when no diagonal entry is positive (the II is feasible)."""
    return bool(np.all(np.diagonal(dist) <= 0))


class MinDistMemo:
    """Memo of ``(ops, II) -> MinDist matrix`` for one graph's analysis.

    ComputeMinDist is the N³ term of the paper's cost model, and the II
    search probes it repeatedly: the RecMII doubling/binary search per
    SCC, then whole-graph passes for the schedule-length bounds.  One
    memo object covers one graph's pipeline (``compute_mii`` creates it
    and hands it on via :attr:`repro.core.mii.MIIResult.mindist_memo`),
    so no (ops, II) pair is ever recomputed — while keeping the memo
    *explicitly scoped*: the cost-model benchmarks that compare per-SCC
    against whole-graph RecMII still measure real work, because each arm
    brings its own memo (or none).
    """

    def __init__(self, graph: DependenceGraph) -> None:
        self.graph = graph
        self._entries: Dict[Tuple[Tuple[int, ...], int], Tuple] = {}
        self.hits = 0
        self.misses = 0

    def mindist(
        self,
        ii: int,
        ops: Optional[Sequence[int]] = None,
        counters: Optional[Counters] = None,
        deadline: Optional[Deadline] = None,
    ) -> Tuple[np.ndarray, Dict[int, int]]:
        """Memoized :func:`compute_mindist` over this memo's graph."""
        ops_key = (
            tuple(range(self.graph.n_ops)) if ops is None else tuple(ops)
        )
        entry = self._entries.get((ops_key, ii))
        if entry is not None:
            self.hits += 1
            return entry
        self.misses += 1
        entry = compute_mindist(self.graph, ii, ops_key, counters, deadline)
        self._entries[(ops_key, ii)] = entry
        return entry

    def feasible(
        self,
        ii: int,
        ops: Optional[Sequence[int]] = None,
        counters: Optional[Counters] = None,
        deadline: Optional[Deadline] = None,
    ) -> bool:
        """Memoized feasibility probe (no positive MinDist diagonal)."""
        dist, _ = self.mindist(ii, ops, counters, deadline)
        return mindist_feasible(dist)


def schedule_length_lower_bound(
    graph: DependenceGraph,
    ii: int,
    counters: Optional[Counters] = None,
    obs=None,
    memo: Optional[MinDistMemo] = None,
    deadline: Optional[Deadline] = None,
) -> int:
    """MinDist[START, STOP]: the dependence-imposed lower bound on SL.

    The paper's lower bound on the modulo schedule length for a given II is
    the larger of this quantity and the acyclic list schedule length
    (Section 4.2); the baseline package provides the latter.

    ``obs`` (an optional :class:`repro.obs.ObsContext`) receives one
    ``mindist.bound`` span per call — this is a whole-graph Floyd-Warshall
    pass, the N³ hot spot the Table-4 complexity study tracks.  Passing
    the ``memo`` carried by a prior MII computation (see
    :class:`MinDistMemo`) makes repeated bounds for one graph free.
    """
    from repro.obs.context import NULL_OBS

    obs = obs if obs is not None else NULL_OBS
    with obs.span("mindist.bound", ii=ii, n_ops=graph.n_ops) as span:
        if memo is not None and memo.graph is graph:
            before = memo.hits
            dist, index_map = memo.mindist(
                ii, counters=counters, deadline=deadline
            )
            span.set("cache_hit", memo.hits > before)
        else:
            dist, index_map = compute_mindist(
                graph, ii, counters=counters, deadline=deadline
            )
        value = dist[index_map[graph.START], index_map[graph.stop]]
        bound = 0 if value == NO_PATH else int(value)
        span.set("bound", bound)
    return bound
