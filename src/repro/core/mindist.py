"""ComputeMinDist: the pairwise minimum-interval matrix (Section 2.2).

For a candidate initiation interval II, ``MinDist[i, j]`` is the minimum
permissible interval between the scheduled time of operation ``i`` and the
scheduled time of operation ``j`` *of the same iteration*.  An edge ``e``
from ``i`` to ``j`` contributes ``delay(e) - II * distance(e)``; MinDist is
the all-pairs longest path under these weights (the (max, +) closure),
computed Floyd-Warshall style.

A positive diagonal entry means some recurrence circuit requires an
operation to be scheduled after itself — the II is infeasible.  The RecMII
is the smallest II with no positive diagonal entry.

Two implementations answer MinDist queries:

* ``fw`` — :func:`compute_mindist`, a direct O(N³) Floyd-Warshall pass at
  one fixed II.  This is the paper's formulation and stays on as the
  differential oracle, exactly as the dict MRT backs the bitmask MRT.
* ``parametric`` (the default) — :class:`ParametricMinDist` runs
  Floyd-Warshall **once per graph** in the semiring of upper envelopes of
  lines.  Every path contributes ``delay − II·distance``, a line in the
  unknown II, so each matrix cell carries the small Pareto frontier of
  ``(delay, distance)`` pairs that can be maximal for *some* integer
  II ≥ 1.  Any ``MinDist(II)`` then materializes in O(N²·P) as one
  vectorized max over the stacked coefficient planes, and the RecMII of a
  path-closed operation set falls out in closed form — the smallest
  integer II where the diagonal envelope crosses ≤ 0 — killing the
  doubling/binary search's repeated N³ probes.

Select the implementation per call site (``MinDistMemo(graph, impl=...)``,
``compute_mii(..., mindist_impl=...)``) or process-wide with the
``REPRO_MINDIST_IMPL`` environment variable; see
:func:`resolve_mindist_impl`.  Both implementations are **bit-identical**
on every materialized matrix: evaluating the parametric closure at a
fixed integer II ≥ 1 is a semiring homomorphism onto the scalar (max, +)
computation, the pruning rule only drops lines dominated at *every*
integer II ≥ 1, and all values are integer-valued float64s, so even the
arithmetic is exact.  This is property-tested against random graphs in
``tests/core/test_mindist_parametric.py`` and over the full corpus in
``tests/test_differential.py``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.deadline import Deadline, check_deadline
from repro.core.stats import Counters
from repro.ir.graph import DependenceGraph

#: The matrix value standing for "no path from i to j".
NO_PATH = -np.inf

#: The implementations a MinDist query can be answered by.
MINDIST_IMPLS = ("parametric", "fw")

#: Environment override consulted when no explicit ``mindist_impl`` is given.
MINDIST_IMPL_ENV = "REPRO_MINDIST_IMPL"


def resolve_mindist_impl(impl: Optional[str] = None) -> str:
    """Pick the MinDist implementation: explicit arg > environment > parametric."""
    choice = (
        impl
        if impl is not None
        else os.environ.get(MINDIST_IMPL_ENV, "parametric")
    )
    if choice not in MINDIST_IMPLS:
        raise ValueError(
            f"unknown MinDist implementation {choice!r}; "
            f"choose from {MINDIST_IMPLS}"
        )
    return choice


def compute_mindist(
    graph: DependenceGraph,
    ii: int,
    ops: Optional[Sequence[int]] = None,
    counters: Optional[Counters] = None,
    deadline: Optional[Deadline] = None,
) -> Tuple[np.ndarray, Dict[int, int]]:
    """Compute the MinDist matrix for ``ops`` (default: all operations).

    Returns ``(matrix, index_map)`` where ``index_map`` maps an operation
    index in the graph to its row/column in the matrix.  Only edges with
    both endpoints inside ``ops`` are considered, which is what the
    SCC-at-a-time RecMII computation needs.

    ``deadline`` (a cooperative :class:`repro.core.deadline.Deadline`)
    is checked once on entry and every 16 Floyd-Warshall pivot rows —
    this N³ pass is the hot spot a wall-clock watchdog must be able to
    interrupt (see :mod:`repro.analysis.resilience`).
    """
    if ii < 1:
        raise ValueError(f"II must be >= 1, got {ii}")
    check_deadline(deadline, "mindist")
    if ops is None:
        ops = range(graph.n_ops)
    ops = list(ops)
    index_map = {op: i for i, op in enumerate(ops)}
    n = len(ops)
    dist = np.full((n, n), NO_PATH, dtype=float)
    for op in ops:
        i = index_map[op]
        for edge in graph.succ_edges(op):
            j = index_map.get(edge.succ)
            if j is None:
                continue
            weight = edge.delay - ii * edge.distance
            if weight > dist[i, j]:
                dist[i, j] = weight

    # Floyd-Warshall in the (max, +) semiring.  The vectorized update
    # performs the same N^3 innermost-loop work the paper counts.
    for k in range(n):
        if deadline is not None and (k & 15) == 0:
            deadline.check("mindist")
        via_k = dist[:, k : k + 1] + dist[k : k + 1, :]
        np.maximum(dist, via_k, out=dist)
    if counters is not None:
        counters.mindist_inner += n * n * n
        counters.mindist_invocations += 1
    return dist, index_map


def mindist_feasible(dist: np.ndarray) -> bool:
    """True when no diagonal entry is positive (the II is feasible)."""
    return bool(np.all(np.diagonal(dist) <= 0))


def _prune_planes(
    vs: np.ndarray, ks: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Keep, per cell, only the Pareto frontier of the stacked lines.

    ``vs`` / ``ks`` are ``(P, n, n)`` coefficient stacks.  A line is
    ``(V, K)`` with ``V`` its value at II = 1 and ``K`` its distance
    (the negated slope); an absent line is ``(−inf, +inf)``.  Line *a*
    dominates line *b* at every integer II ≥ 1 iff ``K_a <= K_b`` and
    ``V_a >= V_b`` (smaller slope, no lower at the left end).  Sorting
    each cell by (K ascending, V descending) makes every potential
    dominator of a line precede it, so one running max of V decides
    survival; absent lines sort last and never survive.
    """
    finite = np.isfinite(vs)
    if finite.any():
        big = float(vs[finite].max() - vs[finite].min()) + 1.0
    else:
        big = 1.0
    # K and V are integer-valued, so K*big - V orders by (K asc, V desc):
    # consecutive K values differ by >= 1 and big exceeds the V spread.
    order = np.argsort(ks * big - vs, axis=0, kind="stable")
    vs = np.take_along_axis(vs, order, axis=0)
    ks = np.take_along_axis(ks, order, axis=0)
    cum = np.maximum.accumulate(vs, axis=0)
    keep = np.empty(vs.shape, dtype=bool)
    keep[0] = vs[0] > NO_PATH
    keep[1:] = vs[1:] > cum[:-1]
    new_p = max(1, int(keep.sum(axis=0).max()))
    front = np.argsort(~keep, axis=0, kind="stable")
    kept = np.take_along_axis(keep, front, axis=0)[:new_p]
    vs = np.where(kept, np.take_along_axis(vs, front, axis=0)[:new_p], NO_PATH)
    ks = np.where(kept, np.take_along_axis(ks, front, axis=0)[:new_p], np.inf)
    return vs, ks


class ParametricMinDist:
    """All-pairs MinDist as a function of II, closed once per graph.

    Floyd-Warshall in the semiring of upper envelopes of lines: a path
    with total delay D and total distance K is the line ``D − II·K``.
    Concatenation adds lines (Minkowski sum of the coefficient pairs);
    "take the longer path" is the pointwise max of envelopes, i.e. the
    union of line sets pruned to the Pareto frontier.  Internally a line
    is stored as ``(V, K)`` with ``V = D − K`` its value at II = 1 —
    both coordinates add under concatenation, which keeps the pivot
    update to two array additions.  Cells are stacked into P coefficient
    planes (P = the largest frontier anywhere in the matrix; P = 1 is
    the overwhelmingly common case and takes a cheaper in-place path).

    Evaluating the closure at a fixed integer II ≥ 1 is a semiring
    homomorphism onto the scalar (max, +) Floyd-Warshall, so
    :meth:`matrix` is bit-identical to :func:`compute_mindist` — at
    feasible *and* infeasible IIs, including −inf no-path cells.

    ``deadline`` is honored exactly like :func:`compute_mindist`: one
    check on entry and one every 16 pivot rows, tagged ``mindist``.
    """

    def __init__(
        self,
        graph: DependenceGraph,
        ops: Optional[Sequence[int]] = None,
        counters: Optional[Counters] = None,
        deadline: Optional[Deadline] = None,
    ) -> None:
        check_deadline(deadline, "mindist")
        if ops is None:
            ops = range(graph.n_ops)
        self.graph = graph
        self.ops = tuple(ops)
        self.index_map: Dict[int, int] = {
            op: i for i, op in enumerate(self.ops)
        }
        self.n = len(self.ops)
        self.evals = 0
        self._build(counters, deadline)

    # -- construction --------------------------------------------------

    def _build(
        self, counters: Optional[Counters], deadline: Optional[Deadline]
    ) -> None:
        n = self.n
        # Seed each cell with the frontier of its (parallel) edge lines.
        cells: Dict[Tuple[int, int], List[Tuple[float, float]]] = {}
        for op in self.ops:
            i = self.index_map[op]
            for edge in self.graph.succ_edges(op):
                j = self.index_map.get(edge.succ)
                if j is None:
                    continue
                v = float(edge.delay - edge.distance)
                k = float(edge.distance)
                lines = cells.setdefault((i, j), [])
                if any(lk <= k and lv >= v for lv, lk in lines):
                    continue
                lines[:] = [
                    (lv, lk)
                    for lv, lk in lines
                    if not (k <= lk and v >= lv)
                ]
                lines.append((v, k))
        depth = max((len(lines) for lines in cells.values()), default=1)
        planes_v = [np.full((n, n), NO_PATH) for _ in range(depth)]
        planes_k = [np.full((n, n), np.inf) for _ in range(depth)]
        for (i, j), lines in cells.items():
            for p, (v, k) in enumerate(lines):
                planes_v[p][i, j] = v
                planes_k[p][i, j] = k

        V = np.stack(planes_v)  # (P, n, n) stacked coefficient planes
        K = np.stack(planes_k)
        # Per-(plane, op) presence of any finite entry in that op's
        # column/row, refreshed lazily: once the closure converges
        # (most pivots), V never mutates, so the same masks answer every
        # remaining pivot from plain python lists.
        alive = True  # force initial refresh
        for piv in range(n):
            if deadline is not None and (piv & 15) == 0:
                deadline.check("mindist")
            if alive:
                finite = V > NO_PATH
                col_alive = finite.any(axis=1).T.tolist()  # [op][plane]
                row_alive = finite.any(axis=2).T.tolist()
                alive = False
            # Only planes with a finite entry in the pivot column (paths
            # reaching the pivot) and row (paths leaving it) can route a
            # new path; their cross product — usually 1x1, never all P²
            # plane pairs — is the candidate set, batched into one
            # stack and screened by one dominance broadcast.
            cols = [p for p, a in enumerate(col_alive[piv]) if a]
            rows = [q for q, a in enumerate(row_alive[piv]) if a]
            if not (cols and rows):
                continue
            col_v = V[cols, :, piv][:, None, :, None]  # (Pc, 1, n, 1)
            col_k = K[cols, :, piv][:, None, :, None]
            row_v = V[rows, piv, :][None, :, None, :]  # (1, Pr, 1, n)
            row_k = K[rows, piv, :][None, :, None, :]
            cand_v = (col_v + row_v).reshape(-1, n, n)
            cand_k = (col_k + row_k).reshape(-1, n, n)
            # A candidate line only matters at cells where no current
            # line dominates it (dropping a dominated line never changes
            # the envelope at any integer II >= 1).
            improve = ~(
                (K[None, :] <= cand_k[:, None]) & (V[None, :] >= cand_v[:, None])
            ).any(axis=1)
            if not improve.any():
                continue
            # Merge each improving candidate: overwrite lines it
            # dominates, stage a sparse plane for the rest.  The batch
            # ``improve`` masks go stale as merges land, which at worst
            # appends an already-dominated line — the envelope (a max)
            # is unchanged, and pruning compacts it away.
            appends = []
            for c in np.flatnonzero(improve.any(axis=(1, 2))):
                cand_vc, cand_kc, imp = cand_v[c], cand_k[c], improve[c]
                for p in range(len(V)):
                    take = imp & (cand_kc <= K[p]) & (cand_vc >= V[p])
                    if take.any():
                        np.copyto(V[p], cand_vc, where=take)
                        np.copyto(K[p], cand_kc, where=take)
                        imp &= ~take
                        if not imp.any():
                            break
                if imp.any():
                    appends.append(
                        (
                            np.where(imp, cand_vc, NO_PATH),
                            np.where(imp, cand_kc, np.inf),
                        )
                    )
            alive = True
            if appends:
                V = np.concatenate([V] + [[a[0]] for a in appends])
                K = np.concatenate([K] + [[a[1]] for a in appends])
                if len(V) > 8:
                    V, K = _prune_planes(V, K)

        # Final compaction: lines dominated by later arrivals never
        # affect results, but fewer planes make every later
        # ``matrix(II)`` evaluation cheaper.
        if len(V) > 1:
            V, K = _prune_planes(V, K)
        self.n_planes = len(V)
        self._v = V
        stacked_k = K
        # Canonicalize absent lines to (V=-inf, K=0): evaluation then
        # yields -inf with no inf*0 hazards, with no masking per eval.
        self._k = np.where(np.isinf(stacked_k), 0.0, stacked_k)

        # Closed-form RecMII ingredients from the diagonal frontier:
        # a circuit line needs D - II*K <= 0, i.e. II >= ceil(D / K);
        # D > 0 with K == 0 is a zero-distance circuit no II satisfies.
        idx = np.arange(n)
        diag_v = self._v[:, idx, idx]
        diag_k = self._k[:, idx, idx]
        diag_d = diag_v + diag_k
        positive = diag_d > 0
        self._op_impossible = np.any(positive & (diag_k == 0), axis=0)
        required = np.ones_like(diag_d)
        bounded = positive & (diag_k > 0)
        required[bounded] = np.ceil(diag_d[bounded] / diag_k[bounded])
        per_op = (
            np.maximum(required.max(axis=0), 1.0)
            if n
            else np.ones(0, dtype=float)
        )
        self._op_crossing = np.where(self._op_impossible, np.inf, per_op)

        if counters is not None:
            counters.mindist_closure_inner += n * n * n

    # -- queries -------------------------------------------------------

    def matrix(
        self, ii: int, counters: Optional[Counters] = None
    ) -> np.ndarray:
        """Materialize MinDist at ``ii``: one vectorized max over planes.

        Bit-identical to ``compute_mindist(graph, ii, ops)[0]``.
        """
        if ii < 1:
            raise ValueError(f"II must be >= 1, got {ii}")
        dist = (self._v + (1.0 - ii) * self._k).max(axis=0)
        self.evals += 1
        if counters is not None:
            counters.mindist_parametric_evals += 1
        return dist

    def crossing(self, ops: Optional[Sequence[int]] = None) -> float:
        """Smallest integer II ≥ 1 with no positive diagonal over ``ops``.

        Returns ``inf`` when a zero-distance circuit with positive delay
        makes every II infeasible.  ``ops`` defaults to the closure's
        whole operation set; a subset answer is only meaningful when the
        subset is closed under paths of this closure's graph — an SCC,
        or a union of SCCs.  (Every path between two vertices of an SCC
        stays inside it, so the whole-graph closure's diagonal restricted
        to the SCC equals the SCC-subgraph closure's diagonal.)
        """
        if ops is None:
            per_op = self._op_crossing
        else:
            per_op = self._op_crossing[[self.index_map[op] for op in ops]]
        if per_op.size == 0:
            return 1.0
        return float(per_op.max())

    def feasible(self, ii: int, ops: Optional[Sequence[int]] = None) -> bool:
        """True when ``ii`` is at or past :meth:`crossing` (see its caveat)."""
        if ii < 1:
            raise ValueError(f"II must be >= 1, got {ii}")
        return ii >= self.crossing(ops)


class MinDistMemo:
    """Memo of ``(ops, II) -> MinDist matrix`` for one graph's analysis.

    ComputeMinDist is the N³ term of the paper's cost model, and the II
    search probes it repeatedly: the RecMII search per SCC, then
    whole-graph passes for the schedule-length bounds and the exact
    backend's per-II windows.  One memo object covers one graph's
    pipeline (``compute_mii`` creates it and hands it on via
    :attr:`repro.core.mii.MIIResult.mindist_memo`), so no (ops, II) pair
    is ever recomputed — while keeping the memo *explicitly scoped*: the
    cost-model benchmarks that compare per-SCC against whole-graph
    RecMII still measure real work, because each arm brings its own memo
    (or none).

    ``impl`` picks how misses are answered (see
    :func:`resolve_mindist_impl`): under ``"parametric"`` the memo
    builds one :class:`ParametricMinDist` closure per distinct ops set
    and materializes matrices from it in O(N²·P); under ``"fw"`` every
    miss is a fresh O(N³) :func:`compute_mindist` pass.  Either way the
    matrices handed out are bit-identical.
    """

    def __init__(
        self, graph: DependenceGraph, impl: Optional[str] = None
    ) -> None:
        self.graph = graph
        self.impl = resolve_mindist_impl(impl)
        # The all-ops key is by far the most probed; build it once
        # instead of re-tupling range(n_ops) on every bound.
        self._all_ops_key = tuple(range(graph.n_ops))
        self._entries: Dict[Tuple[Tuple[int, ...], int], Tuple] = {}
        self._closures: Dict[Tuple[int, ...], ParametricMinDist] = {}
        self.hits = 0
        self.misses = 0

    @property
    def all_ops_key(self) -> Tuple[int, ...]:
        """The canonical (cached) key for whole-graph queries."""
        return self._all_ops_key

    def _ops_key(self, ops: Optional[Sequence[int]]) -> Tuple[int, ...]:
        return self._all_ops_key if ops is None else tuple(ops)

    @property
    def parametric_evals(self) -> int:
        """Matrices materialized from this memo's parametric closures."""
        return sum(c.evals for c in self._closures.values())

    def closure(
        self,
        ops: Optional[Sequence[int]] = None,
        counters: Optional[Counters] = None,
        deadline: Optional[Deadline] = None,
    ) -> ParametricMinDist:
        """The (cached) parametric closure over ``ops``.

        A build counts as a miss (the fresh N³-equivalent pass); a
        cached closure counts as a hit — any query it answers, at any
        II, is served from already-computed state.
        """
        key = self._ops_key(ops)
        closure = self._closures.get(key)
        if closure is None:
            self.misses += 1
            closure = ParametricMinDist(self.graph, key, counters, deadline)
            self._closures[key] = closure
        else:
            self.hits += 1
        return closure

    def mindist(
        self,
        ii: int,
        ops: Optional[Sequence[int]] = None,
        counters: Optional[Counters] = None,
        deadline: Optional[Deadline] = None,
    ) -> Tuple[np.ndarray, Dict[int, int]]:
        """Memoized MinDist matrix over this memo's graph."""
        ops_key = self._ops_key(ops)
        entry = self._entries.get((ops_key, ii))
        if entry is not None:
            self.hits += 1
            return entry
        if self.impl == "parametric":
            # closure() does the hit/miss accounting: materializing a
            # matrix from an already-built closure is served from memo
            # state, only the build itself is a miss.
            closure = self.closure(ops_key, counters, deadline)
            entry = (closure.matrix(ii, counters), closure.index_map)
        else:
            self.misses += 1
            entry = compute_mindist(self.graph, ii, ops_key, counters, deadline)
        self._entries[(ops_key, ii)] = entry
        return entry

    def feasible(
        self,
        ii: int,
        ops: Optional[Sequence[int]] = None,
        counters: Optional[Counters] = None,
        deadline: Optional[Deadline] = None,
    ) -> bool:
        """Memoized feasibility probe (no positive MinDist diagonal).

        Under the parametric implementation this never materializes a
        matrix: feasibility is one comparison against the closure's
        precomputed diagonal crossing.
        """
        if self.impl == "parametric":
            closure = self.closure(ops, counters, deadline)
            return closure.feasible(ii)
        dist, _ = self.mindist(ii, ops, counters, deadline)
        return mindist_feasible(dist)


def schedule_length_lower_bound(
    graph: DependenceGraph,
    ii: int,
    counters: Optional[Counters] = None,
    obs=None,
    memo: Optional[MinDistMemo] = None,
    deadline: Optional[Deadline] = None,
) -> int:
    """MinDist[START, STOP]: the dependence-imposed lower bound on SL.

    The paper's lower bound on the modulo schedule length for a given II is
    the larger of this quantity and the acyclic list schedule length
    (Section 4.2); the baseline package provides the latter.

    ``obs`` (an optional :class:`repro.obs.ObsContext`) receives one
    ``mindist.bound`` span per call plus the deterministic
    ``mindist.parametric_evals`` counter (matrices served from a
    parametric closure rather than an N³ pass).  Passing the ``memo``
    carried by a prior MII computation (see :class:`MinDistMemo`) makes
    repeated bounds for one graph free — and under the parametric
    implementation even the first bound at a new II is only an O(N²·P)
    evaluation of the already-closed envelope.  Without a memo the
    direct Floyd-Warshall pass is used: a one-shot bound has no II
    search to amortize a closure over.
    """
    from repro.obs.context import NULL_OBS

    obs = obs if obs is not None else NULL_OBS
    with obs.span("mindist.bound", ii=ii, n_ops=graph.n_ops) as span:
        if memo is not None and memo.graph is graph:
            before_hits = memo.hits
            before_evals = memo.parametric_evals
            dist, index_map = memo.mindist(
                ii, counters=counters, deadline=deadline
            )
            span.set("cache_hit", memo.hits > before_hits)
            obs.counter("mindist.parametric_evals").inc(
                memo.parametric_evals - before_evals
            )
        else:
            dist, index_map = compute_mindist(
                graph, ii, counters=counters, deadline=deadline
            )
        value = dist[index_map[graph.START], index_map[graph.stop]]
        bound = 0 if value == NO_PATH else int(value)
        span.set("bound", bound)
    return bound
