"""ComputeMinDist: the pairwise minimum-interval matrix (Section 2.2).

For a candidate initiation interval II, ``MinDist[i, j]`` is the minimum
permissible interval between the scheduled time of operation ``i`` and the
scheduled time of operation ``j`` *of the same iteration*.  An edge ``e``
from ``i`` to ``j`` contributes ``delay(e) - II * distance(e)``; MinDist is
the all-pairs longest path under these weights (the (max, +) closure),
computed Floyd-Warshall style.

A positive diagonal entry means some recurrence circuit requires an
operation to be scheduled after itself — the II is infeasible.  The RecMII
is the smallest II with no positive diagonal entry.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.stats import Counters
from repro.ir.graph import DependenceGraph

#: The matrix value standing for "no path from i to j".
NO_PATH = -np.inf


def compute_mindist(
    graph: DependenceGraph,
    ii: int,
    ops: Optional[Sequence[int]] = None,
    counters: Optional[Counters] = None,
) -> Tuple[np.ndarray, Dict[int, int]]:
    """Compute the MinDist matrix for ``ops`` (default: all operations).

    Returns ``(matrix, index_map)`` where ``index_map`` maps an operation
    index in the graph to its row/column in the matrix.  Only edges with
    both endpoints inside ``ops`` are considered, which is what the
    SCC-at-a-time RecMII computation needs.
    """
    if ii < 1:
        raise ValueError(f"II must be >= 1, got {ii}")
    if ops is None:
        ops = range(graph.n_ops)
    ops = list(ops)
    index_map = {op: i for i, op in enumerate(ops)}
    n = len(ops)
    dist = np.full((n, n), NO_PATH, dtype=float)
    for op in ops:
        i = index_map[op]
        for edge in graph.succ_edges(op):
            j = index_map.get(edge.succ)
            if j is None:
                continue
            weight = edge.delay - ii * edge.distance
            if weight > dist[i, j]:
                dist[i, j] = weight

    # Floyd-Warshall in the (max, +) semiring.  The vectorized update
    # performs the same N^3 innermost-loop work the paper counts.
    for k in range(n):
        via_k = dist[:, k : k + 1] + dist[k : k + 1, :]
        np.maximum(dist, via_k, out=dist)
    if counters is not None:
        counters.mindist_inner += n * n * n
        counters.mindist_invocations += 1
    return dist, index_map


def mindist_feasible(dist: np.ndarray) -> bool:
    """True when no diagonal entry is positive (the II is feasible)."""
    return bool(np.all(np.diagonal(dist) <= 0))


def schedule_length_lower_bound(
    graph: DependenceGraph,
    ii: int,
    counters: Optional[Counters] = None,
    obs=None,
) -> int:
    """MinDist[START, STOP]: the dependence-imposed lower bound on SL.

    The paper's lower bound on the modulo schedule length for a given II is
    the larger of this quantity and the acyclic list schedule length
    (Section 4.2); the baseline package provides the latter.

    ``obs`` (an optional :class:`repro.obs.ObsContext`) receives one
    ``mindist.bound`` span per call — this is a whole-graph Floyd-Warshall
    pass, the N³ hot spot the Table-4 complexity study tracks.
    """
    from repro.obs.context import NULL_OBS

    obs = obs if obs is not None else NULL_OBS
    with obs.span("mindist.bound", ii=ii, n_ops=graph.n_ops) as span:
        dist, index_map = compute_mindist(graph, ii, counters=counters)
        value = dist[index_map[graph.START], index_map[graph.stop]]
        bound = 0 if value == NO_PATH else int(value)
        span.set("bound", bound)
    return bound
