"""The paper's primary contribution: iterative modulo scheduling.

Public entry points:

* :func:`repro.core.mii.compute_mii` — the MII lower bound (Section 2),
  combining the resource-constrained bound (ResMII) and the
  recurrence-constrained bound (RecMII, via ComputeMinDist on each SCC).
* :func:`repro.core.scheduler.modulo_schedule` — the iterative modulo
  scheduling algorithm of Section 3 (Figures 2-4), including the HeightR
  priority, Estart windows, the modulo reservation table, displacement
  with the forward-progress rule, and the BudgetRatio mechanism.
* :func:`repro.core.validate.validate_schedule` — static legality checks.
"""

from repro.core.stats import Counters
from repro.core.scc import strongly_connected_components, condensation_order
from repro.core.mindist import MinDistMemo, compute_mindist, mindist_feasible
from repro.core.mii import MIIResult, compute_mii, res_mii, rec_mii
from repro.core.heights import height_r
from repro.core.mrt import (
    DictLinearReservations,
    DictModuloReservations,
    LinearReservations,
    ModuloReservations,
    ReservationConflict,
    make_linear_reservations,
    make_modulo_reservations,
    resolve_mrt_impl,
)
from repro.core.schedule import Schedule
from repro.core.scheduler import (
    IterativeScheduler,
    ModuloScheduleResult,
    SchedulingFailure,
    modulo_schedule,
)
from repro.core.validate import validate_schedule, assert_valid_schedule
from repro.core.preunroll import (
    UnrollRecommendation,
    recommend_unroll,
    unroll_for_modulo,
)
from repro.core.trace import PhaseTimer, ScheduleTrace, TraceEvent
from repro.core.instruction_scheduler import InstructionDrivenScheduler

__all__ = [
    "PhaseTimer",
    "ScheduleTrace",
    "TraceEvent",
    "InstructionDrivenScheduler",
    "UnrollRecommendation",
    "recommend_unroll",
    "unroll_for_modulo",
    "Counters",
    "strongly_connected_components",
    "condensation_order",
    "compute_mindist",
    "mindist_feasible",
    "MinDistMemo",
    "MIIResult",
    "compute_mii",
    "res_mii",
    "rec_mii",
    "height_r",
    "LinearReservations",
    "ModuloReservations",
    "DictLinearReservations",
    "DictModuloReservations",
    "ReservationConflict",
    "make_linear_reservations",
    "make_modulo_reservations",
    "resolve_mrt_impl",
    "Schedule",
    "IterativeScheduler",
    "ModuloScheduleResult",
    "SchedulingFailure",
    "modulo_schedule",
    "validate_schedule",
    "assert_valid_schedule",
]
