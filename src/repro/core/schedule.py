"""Schedule objects: the output of the modulo (and list) schedulers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.graph import DependenceGraph
from repro.machine.resources import ReservationTable


@dataclass
class Schedule:
    """A complete schedule for one iteration of a loop body.

    For a modulo schedule, repeating these issue times every ``ii`` cycles
    yields the software pipeline; ``ii`` of an acyclic list schedule is
    conventionally the schedule length (no overlap).

    Attributes
    ----------
    graph:
        The scheduled dependence graph.
    ii:
        The initiation interval.
    times:
        Issue time per operation index (START and STOP included).
    alternatives:
        The reservation-table alternative chosen per operation (``None``
        for pseudo-operations).
    modulo:
        True for a modulo schedule (resource uses fold at ``t mod II``);
        False for an acyclic list schedule, whose reservations live on a
        linear cycle axis and must not be folded — validators use this to
        pick the right occupancy grid.
    """

    graph: DependenceGraph
    ii: int
    times: Dict[int, int]
    alternatives: Dict[int, Optional[ReservationTable]] = field(
        default_factory=dict
    )
    modulo: bool = True

    def time(self, op: int) -> int:
        """Issue time of operation ``op`` within its iteration."""
        return self.times[op]

    @property
    def schedule_length(self) -> int:
        """SL: the scheduled time of STOP (START is at 0)."""
        return self.times[self.graph.stop]

    @property
    def stage_count(self) -> int:
        """Number of pipeline stages: the iterations in flight at once."""
        if self.schedule_length == 0:
            return 1
        return max(1, math.ceil(self.schedule_length / self.ii))

    def stage(self, op: int) -> int:
        """Which stage (times // II) the operation issues in."""
        return self.times[op] // self.ii

    def slot(self, op: int) -> int:
        """The operation's row in the kernel (times mod II)."""
        return self.times[op] % self.ii

    def ops_at(self, time: int) -> List[int]:
        """Real operations issued at an absolute time within the iteration."""
        return sorted(
            op
            for op, t in self.times.items()
            if t == time and not self.graph.operation(op).is_pseudo
        )

    def kernel_rows(self) -> List[List[Tuple[int, int]]]:
        """Kernel layout: for each modulo slot, the (op, stage) pairs."""
        rows: List[List[Tuple[int, int]]] = [[] for _ in range(self.ii)]
        for op, t in self.times.items():
            if self.graph.operation(op).is_pseudo:
                continue
            rows[t % self.ii].append((op, t // self.ii))
        for row in rows:
            row.sort()
        return rows

    def describe(self) -> str:
        """Human-readable rendering: issue times, then the kernel layout."""
        lines = [
            f"Schedule for {self.graph.name!r}: II={self.ii}, "
            f"SL={self.schedule_length}, stages={self.stage_count}"
        ]
        for op in sorted(self.times):
            operation = self.graph.operation(op)
            alt = self.alternatives.get(op)
            where = f" on {alt.name}" if alt is not None else ""
            lines.append(f"  t={self.times[op]:>4}  {operation.describe()}{where}")
        lines.append("  kernel (slot: op@stage):")
        for slot, row in enumerate(self.kernel_rows()):
            cells = ", ".join(f"op{op}@{stage}" for op, stage in row)
            lines.append(f"    {slot:>3}: {cells}")
        return "\n".join(lines)
