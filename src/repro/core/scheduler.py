"""Iterative modulo scheduling (Section 3, Figures 2-4).

:func:`modulo_schedule` is the paper's procedure ``ModuloSchedule``: it
computes the MII, then calls the inner scheduler (:class:`IterativeScheduler`,
the paper's ``IterativeSchedule``) for successively larger candidate IIs
until one succeeds within the operation-scheduling budget
``BudgetRatio * NumberOfOperations``.

The inner scheduler differs from acyclic list scheduling exactly as the
paper describes:

* it is an *operation* scheduler — the highest-priority unscheduled
  operation is picked even if predecessors are currently unscheduled, and
  the same operation may be picked repeatedly after being displaced;
* priorities are HeightR (Figure 5a);
* Estart considers only *currently scheduled* predecessors (Figure 5b);
* only II contiguous candidate time slots are tried, on a modulo
  reservation table;
* when no conflict-free slot exists, a slot is forced with the
  forward-progress rule of Figure 4, and every operation conflicting with
  any of the opcode's alternatives is displaced (Section 3.4), along with
  any dependence-violated successors.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.deadline import Deadline, check_deadline
from repro.core.heights import height_r
from repro.core.mii import MIIResult, compute_mii
from repro.core.mrt import (
    ModuloReservations,
    make_modulo_reservations,
    resolve_mrt_impl,
)
from repro.core.schedule import Schedule
from repro.core.stats import Counters
from repro.ir.graph import DependenceGraph, GraphError
from repro.machine.resources import ReservationTable


#: FindTimeSlot probing strategies; "batch" answers a whole II-wide
#: window across all alternatives with a handful of mask rotations.
SLOT_IMPLS = ("batch", "scalar")

#: Environment override consulted when no explicit ``slot_impl`` is given.
SLOT_IMPL_ENV = "REPRO_SLOT_IMPL"


def resolve_slot_impl(impl: Optional[str] = None) -> str:
    """Pick the FindTimeSlot strategy: explicit arg > environment > batch."""
    choice = (
        impl if impl is not None else os.environ.get(SLOT_IMPL_ENV, "batch")
    )
    if choice not in SLOT_IMPLS:
        raise ValueError(
            f"unknown slot implementation {choice!r}; "
            f"choose from {SLOT_IMPLS}"
        )
    return choice


class SchedulingFailure(RuntimeError):
    """No modulo schedule was found up to the II cap.

    The exception carries the whole search trajectory — every candidate
    II attempted and the scheduling steps burned at each — so a failure
    record (or a quarantine entry) is actionable without re-running the
    scheduler.  It pickles cleanly through worker pools.
    """

    def __init__(
        self,
        message: str,
        attempted_iis: Optional[List[int]] = None,
        steps_by_ii: Optional[Dict[int, int]] = None,
        budget: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.attempted_iis = list(attempted_iis or [])
        self.steps_by_ii = dict(steps_by_ii or {})
        self.budget = budget

    def detail(self) -> Dict[str, object]:
        """JSON-compatible search trajectory for structured failure records."""
        return {
            "attempted_iis": list(self.attempted_iis),
            "steps_by_ii": {
                str(ii): steps for ii, steps in self.steps_by_ii.items()
            },
            "budget_per_ii": self.budget,
            "steps_total": sum(self.steps_by_ii.values()),
        }

    def __reduce__(self):
        return (
            type(self),
            (self.args[0], self.attempted_iis, self.steps_by_ii, self.budget),
        )


@dataclass(frozen=True)
class AttemptRecord:
    """One candidate-II attempt by one backend, normalized across backends.

    Historically the budget/attempt bookkeeping lived only in
    :func:`modulo_schedule`'s per-call totals, so a degradation-ladder
    run (full IMS, then relaxed IMS, then the list fallback) reported
    only the *last* call's attempts and nothing recorded which scheduler
    produced which rung.  Attempt records fix that: every backend tags
    each candidate II it tries with its own name, the ladder concatenates
    the records across rungs, and the journal payload carries the full
    sequence.

    ``steps`` is the backend's unit of search effort — operation
    scheduling steps for the heuristic schedulers, solver conflicts for
    the exact backend.
    """

    backend: str
    ii: int
    success: bool
    steps: int
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form for cache/journal payloads."""
        return {
            "backend": self.backend,
            "ii": self.ii,
            "success": self.success,
            "steps": self.steps,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AttemptRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            backend=data["backend"],
            ii=int(data["ii"]),
            success=bool(data["success"]),
            steps=int(data["steps"]),
            reason=data.get("reason", ""),
        )


@dataclass
class _AttemptResult:
    """Outcome of one IterativeSchedule invocation at a fixed II."""

    success: bool
    times: Dict[int, int]
    alternatives: Dict[int, Optional[ReservationTable]]
    steps: int


@dataclass
class ModuloScheduleResult:
    """Outcome of the full ModuloSchedule procedure.

    Attributes
    ----------
    schedule:
        The legal modulo schedule that was found.
    mii_result:
        The MII computation the search started from.
    budget_ratio:
        The BudgetRatio used.
    attempts:
        Number of candidate II values tried (the successful one included).
    steps_total:
        Operation scheduling steps across *all* attempts — the quantity the
        paper's aggregate scheduling inefficiency (Figure 6) is built from.
    steps_last:
        Steps in the successful attempt only (Table 3's "number of nodes
        scheduled" uses this).
    counters:
        Instrumentation accumulated over the whole run.
    backend:
        Registered name of the scheduler backend that produced the
        schedule (``"ims"`` for this module's heuristic search).
    optimal:
        ``True`` when the II is *proven* minimal (the exact backend's
        claim, or II == MII), ``False`` when proven non-minimal, and
        ``None`` when nothing proved anything either way — the heuristic
        backends always report ``None`` unless II == MII.
    attempt_records:
        Per-candidate-II :class:`AttemptRecord` sequence, each tagged
        with the backend that ran the attempt (the degradation ladder
        concatenates records across its rungs).
    certificates:
        For the exact backend: ``{ii: unsat-certificate}`` for every II
        it refuted below the achieved one (solver statistics + encoding
        shape; empty for heuristic backends).
    """

    schedule: Schedule
    mii_result: MIIResult
    budget_ratio: float
    attempts: int
    steps_total: int
    steps_last: int
    counters: Counters
    backend: str = "ims"
    optimal: Optional[bool] = None
    attempt_records: List[AttemptRecord] = field(default_factory=list)
    certificates: Dict[int, Dict[str, Any]] = field(default_factory=dict)

    @property
    def ii(self) -> int:
        """The achieved initiation interval."""
        return self.schedule.ii

    @property
    def delta_ii(self) -> int:
        """Achieved II minus the MII lower bound (0 means optimal-vs-bound)."""
        return self.schedule.ii - self.mii_result.mii

    @property
    def ii_ratio(self) -> float:
        """Achieved II over the MII lower bound (1.0 = optimal-vs-bound)."""
        return self.schedule.ii / self.mii_result.mii

    @property
    def schedule_length(self) -> int:
        """SL of the found schedule (one iteration, issue to completion)."""
        return self.schedule.schedule_length

    @property
    def inefficiency(self) -> float:
        """Nodes scheduled per node, within the successful attempt."""
        return self.steps_last / self.schedule.graph.n_ops

    @property
    def heuristic_ii(self) -> Optional[int]:
        """II the heuristic (non-exact) search achieved for this loop.

        For a heuristic backend this is the achieved II itself.  For the
        exact backend it is the II of the successful IMS attempt that
        seeded the upper bound — the quantity the optimality-gap study
        compares against the proven-minimal II — or ``None`` when the
        heuristic found nothing.
        """
        for record in self.attempt_records:
            if record.backend != "exact" and record.success:
                return record.ii
        return self.ii if self.backend != "exact" else None

    @property
    def optimality_gap(self) -> Optional[int]:
        """``heuristic II − proven-minimal II`` (None unless proven)."""
        if self.optimal is not True or self.heuristic_ii is None:
            return None
        return self.heuristic_ii - self.ii


def _priority_heightr(graph: DependenceGraph, ii: int, counters) -> List[int]:
    """The paper's HeightR priority (Figure 5a) — the default."""
    return height_r(graph, ii, counters)


def _priority_input_order(graph: DependenceGraph, ii: int, counters) -> List[int]:
    """Ablation: schedule in (reverse) input order, ignoring structure."""
    return [graph.n_ops - op for op in range(graph.n_ops)]


def _priority_fanout(graph: DependenceGraph, ii: int, counters) -> List[int]:
    """Ablation: prioritize by immediate successor count only."""
    return [len(graph.succ_edges(op)) for op in range(graph.n_ops)]


#: Priority schemes selectable by name; ``"heightr"`` is the paper's.
PRIORITY_SCHEMES = {
    "heightr": _priority_heightr,
    "input_order": _priority_input_order,
    "fanout": _priority_fanout,
}


class IterativeScheduler:
    """One invocation of ``IterativeSchedule`` (Figure 3) at a fixed II."""

    #: Whether a failed FindTimeSlot may force a slot and displace
    #: conflicting operations.  The greedy (non-iterative) subclass turns
    #: this off to quantify what iteration itself buys.
    allow_displacement = True

    def __init__(
        self,
        graph: DependenceGraph,
        machine,
        ii: int,
        counters: Optional[Counters] = None,
        priority: str = "heightr",
        trace=None,
        mrt_impl: Optional[str] = None,
        deadline: Optional[Deadline] = None,
        slot_impl: Optional[str] = None,
    ) -> None:
        if not graph.sealed:
            raise GraphError(f"graph {graph.name!r} must be sealed")
        self.graph = graph
        self.machine = machine
        self.ii = ii
        self.counters = counters if counters is not None else Counters()
        self.trace = trace
        self.deadline = deadline
        self.mrt_impl = resolve_mrt_impl(mrt_impl)
        self.slot_impl = resolve_slot_impl(slot_impl)
        self._slot_batch_probes = 0
        try:
            scheme = PRIORITY_SCHEMES[priority]
        except KeyError:
            raise ValueError(
                f"unknown priority scheme {priority!r}; "
                f"choose from {sorted(PRIORITY_SCHEMES)}"
            ) from None
        self.heights = scheme(graph, ii, self.counters)

    # ------------------------------------------------------------------

    def _prepare(self) -> Optional[_AttemptResult]:
        """Per-attempt setup shared by both scheduling styles.

        Complex reservation tables can fold onto themselves at specific
        IIs (same resource at offsets differing by a multiple of II);
        such alternatives are unplaceable at this II.  If any operation
        loses every alternative, the II is infeasible outright and a
        failed attempt is returned; otherwise None.
        """
        graph = self.graph
        self._mrt = make_modulo_reservations(
            self.ii, machine=self.machine, impl=self.mrt_impl
        )
        mask_set = None
        if self.mrt_impl == "mask":
            compiled_masks = getattr(self.machine, "compiled_masks", None)
            if compiled_masks is not None:
                mask_set = compiled_masks(self.ii)
        self._feasible_alts: Dict[str, tuple] = {}
        for operation in graph.real_operations():
            if operation.opcode in self._feasible_alts:
                continue
            if mask_set is not None:
                # Self-conflicting alternatives were rejected once at
                # mask-compile time; reuse that verdict per (machine, II).
                usable = mask_set.feasible(operation.opcode)
            else:
                usable = tuple(
                    alt
                    for alt in self.machine.opcode(
                        operation.opcode
                    ).alternatives
                    if not self._mrt.self_conflicting(alt)
                )
            if not usable:
                return _AttemptResult(False, {}, {}, 0)
            self._feasible_alts[operation.opcode] = usable
        # Hot-loop views: pseudo flags, opcodes, successor edge lists,
        # and raw predecessor edges.  All of it is II-independent for a
        # sealed graph, so it is computed once and cached on the graph
        # (``graph.succ_edges`` copies into a fresh tuple per call —
        # thousands of calls per attempt otherwise); only the
        # II-resolved weights below are rebuilt per attempt.
        cache = getattr(graph, "_sched_cache", None)
        if cache is None:
            all_ops = [graph.operation(op) for op in range(graph.n_ops)]
            pred_raw = []
            for op in range(graph.n_ops):
                entries = []
                count = 0
                for edge in graph.pred_edges(op):
                    count += 1
                    if edge.pred == op:
                        continue
                    entries.append((edge.pred, edge.delay, edge.distance))
                pred_raw.append((tuple(entries), count))
            cache = graph._sched_cache = (
                [operation.is_pseudo for operation in all_ops],
                [
                    None if operation.is_pseudo else operation.opcode
                    for operation in all_ops
                ],
                [graph.succ_edges(op) for op in range(graph.n_ops)],
                pred_raw,
            )
        self._is_pseudo, opcodes, self._succ_lists, pred_raw = cache
        self._op_alts = [
            None if opcode is None else self._feasible_alts[opcode]
            for opcode in opcodes
        ]
        # Batched FindTimeSlot needs the bitmask MRT's occupancy integer;
        # the dict oracle keeps the scalar scan (exactly as recorded in
        # the as-if probe accounting, so counters agree either way).
        self._batch_slots = (
            self.slot_impl == "batch"
            and type(self._mrt) is ModuloReservations
        )
        # Estart sweeps run once per scheduling step (and per readiness
        # probe in the instruction-driven style); precompute each
        # operation's predecessor array with the II-resolved edge weight
        # ``delay - II*distance`` so the sweep is a max over pairs — and
        # a vectorized numpy max for high-fanin operations.
        n_ops = graph.n_ops
        ii = self.ii
        pred_pairs: List[tuple] = [
            tuple(
                (pred, delay - ii * distance)
                for pred, delay, distance in entries
            )
            for entries, _ in pred_raw
        ]
        self._pred_pairs = pred_pairs
        self._pred_counts = [count for _, count in pred_raw]
        self._pred_vec: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        wide = [op for op in range(n_ops) if len(pred_pairs[op]) >= 16]
        for op in wide:
            arr = np.array(pred_pairs[op], dtype=np.int64)
            self._pred_vec[op] = (arr[:, 0], arr[:, 1].astype(float))
        self._time_arr = (
            np.full(n_ops, -np.inf) if wide else None
        )
        # Dense slot array: None marks unscheduled.  Indexing beats a
        # dict in the Estart sweep, the hottest read in the attempt.
        self._times: List[Optional[int]] = [None] * n_ops
        self._alts: Dict[int, Optional[ReservationTable]] = {}
        self._prev_time: Dict[int, int] = {}
        self._never_scheduled: Set[int] = set(range(graph.n_ops))
        self._unscheduled: Set[int] = set(range(1, graph.n_ops))
        self._heap: List[Tuple[int, int]] = [
            (-self.heights[op], op) for op in self._unscheduled
        ]
        heapq.heapify(self._heap)
        return None

    def run(self, budget: int) -> _AttemptResult:
        """Attempt to schedule every operation within ``budget`` steps."""
        graph = self.graph
        dead = self._prepare()
        if dead is not None:
            return dead
        steps = 0

        # START is pinned at time 0 (Figure 3) and consumes no resources.
        self._place(graph.START, 0, None)
        steps += 1

        while self._unscheduled and steps < budget:
            # Cooperative watchdog: one clock read every 32 steps keeps
            # the overhead unmeasurable while bounding a wedged attempt.
            if self.deadline is not None and (steps & 31) == 0:
                self.deadline.check("scheduling")
            op = self._pop_highest_priority()
            estart = self._calculate_early_start(op)
            if self.trace is not None:
                self.trace.pick(op, estart)
            min_time = estart
            max_time = min_time + self.ii - 1
            slot, alternative = self._find_time_slot(op, min_time, max_time)
            if (
                alternative is None
                and not self._is_pseudo[op]
                and not self.allow_displacement
            ):
                # Greedy mode: no conflict-free slot means this II is
                # abandoned on the spot — no unscheduling, no retries.
                break
            self._schedule(op, slot, alternative)
            steps += 1

        return _AttemptResult(
            success=not self._unscheduled,
            times={
                op: t for op, t in enumerate(self._times) if t is not None
            },
            alternatives=dict(self._alts),
            steps=steps,
        )

    # ------------------------------------------------------------------

    def _pop_highest_priority(self) -> int:
        """HighestPriorityOperation: lazy-deletion max-heap on HeightR."""
        while self._heap:
            _, op = heapq.heappop(self._heap)
            if op in self._unscheduled:
                return op
        raise AssertionError("heap empty while operations remain unscheduled")

    def _calculate_early_start(self, op: int) -> int:
        """Estart per Figure 5b: only scheduled predecessors constrain.

        The sweep runs over the per-operation predecessor arrays built in
        :meth:`_prepare` (weights already II-resolved); high-fanin
        operations take a vectorized numpy max over the scheduled-time
        array, where unscheduled predecessors sit at −inf and drop out of
        the max for free.
        """
        self.counters.estart_preds += self._pred_counts[op]
        vec = self._pred_vec.get(op)
        if vec is not None:
            best = float(np.max(self._time_arr[vec[0]] + vec[1]))
            return int(best) if best > 0 else 0
        estart = 0
        times = self._times
        for pred, weight in self._pred_pairs[op]:
            pred_time = times[pred]
            if pred_time is None:
                continue
            candidate = pred_time + weight
            if candidate > estart:
                estart = candidate
        return estart

    def _find_time_slot(
        self, op: int, min_time: int, max_time: int
    ) -> Tuple[int, Optional[ReservationTable]]:
        """FindTimeSlot per Figure 4, extended over the opcode alternatives.

        Returns ``(slot, alternative)``; ``alternative`` is ``None`` when
        the slot was forced (the caller then displaces conflicting
        operations) or when the operation is a pseudo-operation.
        """
        if self._is_pseudo[op]:
            self.counters.findtimeslot_iters += 1
            return min_time, None
        alternatives = self._op_alts[op]
        if self._batch_slots:
            # One mask/rotate sweep answers the whole II-wide window over
            # every alternative; ``findtimeslot_iters`` still records the
            # (slot, alternative) pairs the scalar scan would have probed.
            self._slot_batch_probes += 1
            time, index = self._mrt.first_free_slot(alternatives, min_time)
            if time is not None:
                self.counters.findtimeslot_iters += (
                    (time - min_time) * len(alternatives) + index + 1
                )
                return time, alternatives[index]
            self.counters.findtimeslot_iters += self.ii * len(alternatives)
        else:
            for time in range(min_time, max_time + 1):
                for alternative in alternatives:
                    self.counters.findtimeslot_iters += 1
                    if not self._mrt.conflicts(alternative, time):
                        return time, alternative
        # No conflict-free slot: pick one that guarantees forward progress.
        if op in self._never_scheduled or min_time > self._prev_time[op]:
            return min_time, None
        return self._prev_time[op] + 1, None

    def _schedule(
        self, op: int, slot: int, alternative: Optional[ReservationTable]
    ) -> None:
        """Schedule per Figure 3's note: displace whatever conflicts."""
        forced = False
        if not self._is_pseudo[op]:
            alternatives = self._op_alts[op]
            if alternative is None:
                # Forced placement (Section 3.4): displace every operation
                # conflicting with *any* alternative, then take the first.
                forced = True
                for victim in sorted(
                    self._mrt.conflicting_ops(alternatives, slot)
                ):
                    self._unschedule(victim, culprit=op)
                alternative = alternatives[0]
        if forced:
            self.counters.ops_forced += 1
        if self.trace is not None:
            if forced:
                self.trace.force(op, slot)
            else:
                self.trace.place(
                    op, slot, alternative.name if alternative else "pseudo"
                )
        self._place(op, slot, alternative)
        # Displace dependence-violated successors; predecessors were
        # honoured through Estart.
        times = self._times
        ii = self.ii
        for edge in self._succ_lists[op]:
            if edge.succ == op:
                continue
            succ_time = times[edge.succ]
            if succ_time is None:
                continue
            if succ_time < slot + edge.delay - ii * edge.distance:
                self._unschedule(edge.succ, culprit=op)

    def _place(
        self, op: int, slot: int, alternative: Optional[ReservationTable]
    ) -> None:
        if alternative is not None:
            self._mrt.reserve(op, alternative, slot)
            # The MRT's fast path works on CompiledAlternative wrappers;
            # the schedule itself records the underlying table.
            alternative = getattr(alternative, "table", alternative)
        self._times[op] = slot
        if self._time_arr is not None:
            self._time_arr[op] = slot
        self._alts[op] = alternative
        self._prev_time[op] = slot
        self._unscheduled.discard(op)
        self._never_scheduled.discard(op)
        self.counters.ops_scheduled += 1

    def _unschedule(self, op: int, culprit: int = -1) -> None:
        if op == self.graph.START:
            raise AssertionError("START must never be displaced")
        if self.trace is not None:
            self.trace.displace(op, self._times[op], culprit)
        self._mrt.release(op)
        self._times[op] = None
        if self._time_arr is not None:
            self._time_arr[op] = -np.inf
        del self._alts[op]
        self._unscheduled.add(op)
        heapq.heappush(self._heap, (-self.heights[op], op))
        self.counters.ops_unscheduled += 1


class GreedyScheduler(IterativeScheduler):
    """Non-iterative ablation: list scheduling onto the MRT.

    Identical to :class:`IterativeScheduler` except that nothing is ever
    displaced: if the highest-priority operation finds no conflict-free
    slot in its II-wide window, the candidate II is abandoned
    immediately.  This is modulo scheduling *without* the paper's
    contribution, and the ablation benchmark measures how much II (and
    how many wasted attempts) that costs on complex reservation tables.
    """

    allow_displacement = False


def default_max_ii(graph: DependenceGraph, mii: int) -> int:
    """A generous cap on the II search.

    Once II exceeds the total resource occupancy of one iteration, every
    II-wide window contains a conflict-free slot, so failures beyond a cap
    proportional to the sequential schedule length indicate a bug rather
    than a hard loop; we cap at twice that plus slack.
    """
    sequential = sum(
        max(1, graph.latency(op.index)) for op in graph.real_operations()
    )
    return 2 * max(mii, sequential) + 32


def modulo_schedule(
    graph: DependenceGraph,
    machine,
    budget_ratio: float = 2.0,
    counters: Optional[Counters] = None,
    mii_result: Optional[MIIResult] = None,
    max_ii: Optional[int] = None,
    exact_mii: bool = True,
    priority: str = "heightr",
    style: str = "operation",
    trace=None,
    obs=None,
    mrt_impl: Optional[str] = None,
    deadline: Optional[Deadline] = None,
    slot_impl: Optional[str] = None,
    mindist_impl: Optional[str] = None,
) -> ModuloScheduleResult:
    """ModuloSchedule (Figure 2): find a legal modulo schedule.

    Parameters
    ----------
    graph:
        A sealed dependence graph.
    machine:
        The machine description providing reservation-table alternatives.
    budget_ratio:
        The paper's BudgetRatio: the budget for each candidate II is
        ``budget_ratio * NumberOfOperations``.  The paper finds ~2 to be
        the sweet spot (Figure 6); 6 reproduces the quality-oriented
        setting of the Table 3 experiments.
    counters:
        Optional instrumentation accumulator.
    mii_result:
        A precomputed MII (to avoid recomputation in sweeps).
    max_ii:
        Cap on the II search; :class:`SchedulingFailure` is raised beyond it.
    exact_mii:
        Forwarded to :func:`repro.core.mii.compute_mii` when ``mii_result``
        is not supplied.
    priority:
        Name of the scheduling priority scheme (see ``PRIORITY_SCHEMES``);
        ``"heightr"`` is the paper's, the others exist for ablations.
    style:
        ``"operation"`` (the paper's operation scheduler),
        ``"instruction"`` (the footnoted time-cursor style, implemented in
        :mod:`repro.core.instruction_scheduler`), or ``"greedy"``
        (non-iterative: no displacement, for the ablation study).
    trace:
        Optional :class:`repro.core.trace.ScheduleTrace` receiving every
        pick / place / force / displace decision.
    obs:
        Optional :class:`repro.obs.ObsContext`.  Each IterativeSchedule
        attempt becomes a ``schedule.attempt`` span carrying the
        candidate II, the budget burn-down (steps used / remaining) and
        the displacement/force counts of that attempt; deterministic
        outcome metrics (attempts, delta II, per-attempt steps, MRT
        conflict-probe counts ``mrt.conflict_checks`` /
        ``mrt.mask_fastpath``) land in the metrics registry.
    mrt_impl:
        Reservation-table implementation: ``"mask"`` (the bitmask fast
        path, the default), ``"dict"`` (the original dict-of-cells
        oracle), or ``None`` to consult ``REPRO_MRT_IMPL``.
    slot_impl:
        FindTimeSlot strategy: ``"batch"`` (the default — one
        mask/rotate sweep per window over all alternatives, bitmask MRT
        only; the dict oracle always scans), ``"scalar"`` (the per-slot,
        per-alternative scan), or ``None`` to consult
        ``REPRO_SLOT_IMPL``.  Schedules and counters are identical
        either way.
    mindist_impl:
        MinDist implementation forwarded to
        :func:`repro.core.mii.compute_mii` when ``mii_result`` is not
        supplied: ``"parametric"`` (one envelope-semiring closure per
        graph, the default), ``"fw"`` (the per-II Floyd-Warshall
        oracle), or ``None`` to consult ``REPRO_MINDIST_IMPL``.
    deadline:
        Optional cooperative :class:`repro.core.deadline.Deadline`.
        Checked before every II attempt and every 32 operation-scheduling
        steps within an attempt (and threaded into the MII computation
        when one happens here); expiry raises
        :class:`repro.core.deadline.DeadlineExceeded`, which the corpus
        engine's degradation ladder turns into a fallback schedule.

    Raises
    ------
    SchedulingFailure
        If no schedule is found for any II up to ``max_ii``.  The
        exception records every attempted II and the steps spent on it.
    repro.core.deadline.DeadlineExceeded
        If ``deadline`` expires mid-search.
    """
    if budget_ratio < 1.0:
        raise ValueError("budget_ratio below 1 cannot schedule every operation")
    if style == "operation":
        scheduler_class = IterativeScheduler
    elif style == "greedy":
        scheduler_class = GreedyScheduler
    elif style == "instruction":
        from repro.core.instruction_scheduler import InstructionDrivenScheduler

        scheduler_class = InstructionDrivenScheduler
    else:
        raise ValueError(
            f"unknown scheduling style {style!r}; "
            "choose 'operation' or 'instruction'"
        )
    from repro.obs.context import NULL_OBS

    obs = obs if obs is not None else NULL_OBS
    counters = counters if counters is not None else Counters()
    if mii_result is None:
        mii_result = compute_mii(
            graph, machine, counters, exact=exact_mii, obs=obs,
            deadline=deadline, mindist_impl=mindist_impl,
        )
    if max_ii is None:
        max_ii = default_max_ii(graph, mii_result.mii)
    budget = int(budget_ratio * graph.n_ops)
    attempts = 0
    steps_total = 0
    steps_by_ii: Dict[int, int] = {}
    records: List[AttemptRecord] = []
    ii = mii_result.mii
    with obs.span(
        "schedule", graph=graph.name, style=style, mii=mii_result.mii
    ) as schedule_span:
        while ii <= max_ii:
            check_deadline(deadline, "modulo_schedule II search")
            attempts += 1
            counters.ii_attempts += 1
            if trace is not None:
                trace.attempt(ii)
            displaced_before = counters.ops_unscheduled
            forced_before = counters.ops_forced
            with obs.span("schedule.attempt", ii=ii) as attempt_span:
                scheduler = scheduler_class(
                    graph, machine, ii, counters, priority=priority,
                    trace=trace, mrt_impl=mrt_impl, deadline=deadline,
                    slot_impl=slot_impl,
                )
                attempt = scheduler.run(budget)
            steps_by_ii[ii] = attempt.steps
            mrt = getattr(scheduler, "_mrt", None)
            if mrt is not None:
                obs.counter("mrt.conflict_checks").inc(mrt.checks)
                obs.counter("mrt.mask_fastpath").inc(mrt.fastpath_checks)
            obs.counter("sched.slot_batch_probes").inc(
                scheduler._slot_batch_probes
            )
            attempt_span.set("success", attempt.success)
            attempt_span.set("steps", attempt.steps)
            attempt_span.set("budget", budget)
            attempt_span.set("budget_left", budget - attempt.steps)
            attempt_span.set(
                "displaced", counters.ops_unscheduled - displaced_before
            )
            attempt_span.set("forced", counters.ops_forced - forced_before)
            obs.histogram("sched.attempt.steps").observe(attempt.steps)
            steps_total += attempt.steps
            records.append(
                AttemptRecord(
                    backend="ims",
                    ii=ii,
                    success=attempt.success,
                    steps=attempt.steps,
                    reason=(
                        "scheduled"
                        if attempt.success
                        else ("infeasible" if attempt.steps == 0 else "budget")
                    ),
                )
            )
            if attempt.success:
                schedule = Schedule(
                    graph, ii, attempt.times, attempt.alternatives
                )
                schedule_span.set("ii", ii)
                schedule_span.set("attempts", attempts)
                obs.counter("sched.loops").inc()
                obs.histogram("sched.attempts").observe(attempts)
                obs.histogram("sched.ii").observe(ii)
                obs.histogram("sched.delta_ii").observe(ii - mii_result.mii)
                return ModuloScheduleResult(
                    schedule=schedule,
                    mii_result=mii_result,
                    budget_ratio=budget_ratio,
                    attempts=attempts,
                    steps_total=steps_total,
                    steps_last=attempt.steps,
                    counters=counters,
                    backend="ims",
                    # II == MII is a proof by the lower bound; anything
                    # above it the heuristic cannot certify either way.
                    optimal=True if ii == mii_result.mii else None,
                    attempt_records=records,
                )
            ii += 1
    obs.counter("sched.failures").inc()
    raise SchedulingFailure(
        f"no modulo schedule for {graph.name!r} with II in "
        f"[{mii_result.mii}, {max_ii}] at budget_ratio={budget_ratio} "
        f"({attempts} attempts, budget {budget} steps/II, "
        f"{steps_total} steps total)",
        attempted_iis=sorted(steps_by_ii),
        steps_by_ii=steps_by_ii,
        budget=budget,
    )
