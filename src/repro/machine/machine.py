"""Machine descriptions: the resource set and opcode repertoire.

A :class:`MachineDescription` is the scheduler's entire view of the target
processor: which resources exist (pipeline stages, buses, issue slots) and,
for every opcode, its latency and reservation-table alternatives.  It also
serves as the *latency provider* for dependence graphs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from repro.machine.opcodes import Opcode
from repro.machine.resources import ReservationTable, TableKind


class MachineError(KeyError):
    """Raised for unknown opcodes or malformed machine descriptions."""


class MachineDescription:
    """An immutable machine model.

    Parameters
    ----------
    name:
        Model name used in reports.
    resources:
        All resource names.  Every reservation table of every opcode must
        reference only these.
    opcodes:
        The opcode repertoire.
    """

    def __init__(
        self, name: str, resources: Iterable[str], opcodes: Iterable[Opcode]
    ) -> None:
        self.name = name
        self._resources: Tuple[str, ...] = tuple(resources)
        if len(set(self._resources)) != len(self._resources):
            raise MachineError(f"machine {name!r} has duplicate resources")
        self._opcodes: Dict[str, Opcode] = {}
        resource_set = set(self._resources)
        for opcode in opcodes:
            if opcode.name in self._opcodes:
                raise MachineError(
                    f"machine {name!r} defines opcode {opcode.name!r} twice"
                )
            for alt in opcode.alternatives:
                missing = set(alt.resources) - resource_set
                if missing:
                    raise MachineError(
                        f"opcode {opcode.name!r} alternative {alt.name!r} uses "
                        f"unknown resources {sorted(missing)}"
                    )
            self._opcodes[opcode.name] = opcode

    # ------------------------------------------------------------------

    @property
    def resources(self) -> Tuple[str, ...]:
        """All resource names, in declaration order."""
        return self._resources

    @property
    def opcode_names(self) -> Tuple[str, ...]:
        """Sorted names of every opcode in the repertoire."""
        return tuple(sorted(self._opcodes))

    def has_opcode(self, name: str) -> bool:
        """Whether the machine defines opcode ``name``."""
        return name in self._opcodes

    def opcode(self, name: str) -> Opcode:
        """Look up an opcode; raises :class:`MachineError` if unknown."""
        try:
            return self._opcodes[name]
        except KeyError:
            raise MachineError(
                f"machine {self.name!r} has no opcode {name!r}"
            ) from None

    def latency(self, name: str) -> int:
        """Latency of an opcode (latency-provider protocol for graphs)."""
        return self.opcode(name).latency

    def alternatives(self, name: str) -> Tuple[ReservationTable, ...]:
        """The reservation-table alternatives of opcode ``name``."""
        return self.opcode(name).alternatives

    def table_kind_census(self) -> Dict[TableKind, int]:
        """Count reservation tables of each kind across the repertoire."""
        census = {kind: 0 for kind in TableKind}
        for opcode in self._opcodes.values():
            for alt in opcode.alternatives:
                census[alt.kind] += 1
        return census

    def describe(self) -> str:
        """Multi-line summary in the spirit of Table 2 of the paper."""
        lines = [f"Machine {self.name!r}"]
        lines.append(f"  resources: {', '.join(self._resources)}")
        for name in sorted(self._opcodes):
            opcode = self._opcodes[name]
            alts = ", ".join(a.name for a in opcode.alternatives)
            lines.append(
                f"  {name}: latency={opcode.latency}, alternatives=[{alts}]"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MachineDescription({self.name!r}, {len(self._resources)} "
            f"resources, {len(self._opcodes)} opcodes)"
        )
