"""Machine descriptions: the resource set and opcode repertoire.

A :class:`MachineDescription` is the scheduler's entire view of the target
processor: which resources exist (pipeline stages, buses, issue slots) and,
for every opcode, its latency and reservation-table alternatives.  It also
serves as the *latency provider* for dependence graphs.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.machine.opcodes import Opcode
from repro.machine.resources import (
    CompiledAlternative,
    ReservationTable,
    TableKind,
    compile_alternative,
)


class MachineError(KeyError):
    """Raised for unknown opcodes or malformed machine descriptions."""


class CompiledMaskSet:
    """Every opcode alternative of one machine, mask-compiled at one II.

    Resources take their bit rows from the machine's declaration order,
    so masks are stable across processes and machine instances with the
    same content.  Alternatives that fold onto themselves at this II are
    rejected here, once — ``feasible()`` is what the scheduler's
    per-attempt setup consumes instead of re-probing every alternative.
    """

    def __init__(self, machine: "MachineDescription", ii: int) -> None:
        self.ii = ii
        self.row_names: Tuple[str, ...] = machine.resources
        self.rows: Dict[str, int] = {
            name: row for row, name in enumerate(self.row_names)
        }
        self._all: Dict[str, Tuple[CompiledAlternative, ...]] = {}
        self._feasible: Dict[str, Tuple[CompiledAlternative, ...]] = {}
        for opcode in machine.opcode_names:
            compiled = tuple(
                compile_alternative(alt, self.rows, ii)
                for alt in machine.opcode(opcode).alternatives
            )
            self._all[opcode] = compiled
            self._feasible[opcode] = tuple(
                alt for alt in compiled if not alt.self_conflicting
            )

    def alternatives(self, opcode: str) -> Tuple[CompiledAlternative, ...]:
        """Every compiled alternative of ``opcode``, in declaration order."""
        return self._all[opcode]

    def feasible(self, opcode: str) -> Tuple[CompiledAlternative, ...]:
        """The alternatives of ``opcode`` placeable at this II."""
        return self._feasible[opcode]


#: Process-wide compiled-mask cache, content-addressed like the corpus
#: engine's result cache: the key is (sha256 of the serialized machine,
#: II), so equal machines built in different places share one compile.
_MASK_SET_CACHE: Dict[Tuple[str, int], CompiledMaskSet] = {}
_MASK_SET_CACHE_LIMIT = 1024


class MachineDescription:
    """An immutable machine model.

    Parameters
    ----------
    name:
        Model name used in reports.
    resources:
        All resource names.  Every reservation table of every opcode must
        reference only these.
    opcodes:
        The opcode repertoire.
    """

    def __init__(
        self, name: str, resources: Iterable[str], opcodes: Iterable[Opcode]
    ) -> None:
        self.name = name
        self._resources: Tuple[str, ...] = tuple(resources)
        if len(set(self._resources)) != len(self._resources):
            raise MachineError(f"machine {name!r} has duplicate resources")
        self._opcodes: Dict[str, Opcode] = {}
        resource_set = set(self._resources)
        for opcode in opcodes:
            if opcode.name in self._opcodes:
                raise MachineError(
                    f"machine {name!r} defines opcode {opcode.name!r} twice"
                )
            for alt in opcode.alternatives:
                missing = set(alt.resources) - resource_set
                if missing:
                    raise MachineError(
                        f"opcode {opcode.name!r} alternative {alt.name!r} uses "
                        f"unknown resources {sorted(missing)}"
                    )
            self._opcodes[opcode.name] = opcode
        self._content_key: Optional[str] = None
        self._mask_sets: Dict[int, CompiledMaskSet] = {}

    # ------------------------------------------------------------------

    @property
    def content_key(self) -> str:
        """SHA-256 of the canonical serialized machine (lazy, memoized)."""
        if self._content_key is None:
            from repro.machine.serialize import machine_to_dict

            text = json.dumps(
                machine_to_dict(self), sort_keys=True, separators=(",", ":")
            )
            self._content_key = hashlib.sha256(
                text.encode("utf-8")
            ).hexdigest()
        return self._content_key

    def compiled_masks(self, ii: int) -> CompiledMaskSet:
        """The bitmask compilation of every opcode alternative at ``ii``.

        Compilation happens at most once per (machine content, II) per
        process; repeated scheduler attempts, corpus loops, and even
        distinct-but-equal machine instances all share the result.
        """
        cached = self._mask_sets.get(ii)
        if cached is not None:
            return cached
        key = (self.content_key, ii)
        shared = _MASK_SET_CACHE.get(key)
        if shared is None:
            while len(_MASK_SET_CACHE) >= _MASK_SET_CACHE_LIMIT:
                _MASK_SET_CACHE.pop(next(iter(_MASK_SET_CACHE)))
            shared = _MASK_SET_CACHE[key] = CompiledMaskSet(self, ii)
        self._mask_sets[ii] = shared
        return shared

    # ------------------------------------------------------------------

    @property
    def resources(self) -> Tuple[str, ...]:
        """All resource names, in declaration order."""
        return self._resources

    @property
    def opcode_names(self) -> Tuple[str, ...]:
        """Sorted names of every opcode in the repertoire."""
        return tuple(sorted(self._opcodes))

    def has_opcode(self, name: str) -> bool:
        """Whether the machine defines opcode ``name``."""
        return name in self._opcodes

    def opcode(self, name: str) -> Opcode:
        """Look up an opcode; raises :class:`MachineError` if unknown."""
        try:
            return self._opcodes[name]
        except KeyError:
            raise MachineError(
                f"machine {self.name!r} has no opcode {name!r}"
            ) from None

    def latency(self, name: str) -> int:
        """Latency of an opcode (latency-provider protocol for graphs)."""
        return self.opcode(name).latency

    def alternatives(self, name: str) -> Tuple[ReservationTable, ...]:
        """The reservation-table alternatives of opcode ``name``."""
        return self.opcode(name).alternatives

    def table_kind_census(self) -> Dict[TableKind, int]:
        """Count reservation tables of each kind across the repertoire."""
        census = {kind: 0 for kind in TableKind}
        for opcode in self._opcodes.values():
            for alt in opcode.alternatives:
                census[alt.kind] += 1
        return census

    def describe(self) -> str:
        """Multi-line summary in the spirit of Table 2 of the paper."""
        lines = [f"Machine {self.name!r}"]
        lines.append(f"  resources: {', '.join(self._resources)}")
        for name in sorted(self._opcodes):
            opcode = self._opcodes[name]
            alts = ", ".join(a.name for a in opcode.alternatives)
            lines.append(
                f"  {name}: latency={opcode.latency}, alternatives=[{alts}]"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MachineDescription({self.name!r}, {len(self._resources)} "
            f"resources, {len(self._opcodes)} opcodes)"
        )
