"""Reconstructed Cydra 5 machine description (Table 2 of the paper).

The paper's experiments used the Cydra 5's detailed reservation tables with
the latencies of Table 2 (load latency forced to 20 cycles).  The exact
proprietary tables are not public; this module reconstructs a machine with
the same functional-unit counts and latencies, and with the structural
properties the paper describes:

* two memory ports which also execute predicate set/reset (and here,
  compares), with a *complex* reservation table for loads — the port is
  occupied again on the data-return cycle, 19 cycles after issue;
* two address ALUs with simple tables;
* one adder and one multiplier whose pipelines deposit results on a shared
  floating-point result bus, reproducing the cross-unit collision of
  Figure 1 (an add may not issue one cycle after a multiply);
* divide and square root *block* the multiplier pipeline for many cycles;
* one instruction unit executing the loop-closing branch.

===============  ======  =============================  =========
Functional unit  Number  Operations                     Latency
===============  ======  =============================  =========
Memory port      2       load                           20
                         store                          2
                         predicate set/reset, compares  2
Address ALU      2       address add/subtract, copies   3
Adder            1       integer/FLP add/subtract       4
Multiplier       1       integer/FLP multiply           5
                         integer/FLP divide             22
                         FLP square root                26
Instruction      1       branch                         3
===============  ======  =============================  =========
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from repro.machine.machine import MachineDescription
from repro.machine.opcodes import Opcode
from repro.machine.resources import ReservationTable

#: Cycle offset, after issue, at which a load re-occupies its memory port
#: for the returning data.  latency 20 => data on the bus at cycle 19.
LOAD_RETURN_OFFSET = 19

#: Cycles for which a divide blocks the first multiplier stage.
DIVIDE_BLOCK_CYCLES = 16

#: Cycles for which a square root blocks the first multiplier stage.
SQRT_BLOCK_CYCLES = 20


def _mem_alternatives(kind: str, load_latency: int = 20) -> List[ReservationTable]:
    """Reservation tables for the two memory ports.

    A load occupies its port on the issue cycle and again when the data
    returns 19 cycles later — a *complex* table (same resource, two
    non-contiguous offsets).  Two memory operations on the same port
    therefore collide not only when issued at the same slot but also when
    one issues exactly where another's data returns (mod II), which is the
    kind of pattern that forces the scheduler to iterate.
    """
    tables = []
    for index in (0, 1):
        port = f"mem_port{index}"
        if kind == "load" and load_latency >= 2:
            uses = [(port, 0), (port, load_latency - 1)]
        else:
            uses = [(port, 0)]
        tables.append(ReservationTable(port, uses))
    return tables


def _aalu_alternatives() -> List[ReservationTable]:
    return [
        ReservationTable(unit, [(unit, 0)]) for unit in ("aalu0", "aalu1")
    ]


def _adder_table() -> ReservationTable:
    return ReservationTable(
        "adder", [("add_stage0", 0), ("add_stage1", 1), ("fp_result_bus", 3)]
    )


def _multiplier_table() -> ReservationTable:
    return ReservationTable(
        "multiplier",
        [("mul_stage0", 0), ("mul_stage1", 1), ("fp_result_bus", 4)],
    )


def _divide_table(block_cycles: int, result_offset: int) -> ReservationTable:
    uses = [("mul_stage0", t) for t in range(block_cycles)]
    uses.append(("fp_result_bus", result_offset))
    return ReservationTable("multiplier", uses)


@lru_cache(maxsize=1)
def cydra5() -> MachineDescription:
    """Build (once) and return the reconstructed Cydra 5 machine."""
    return cydra5_variant()


@lru_cache(maxsize=None)
def cydra5_variant(load_latency: int = 20) -> MachineDescription:
    """A Cydra 5 with a configurable load latency.

    Used by the latency-sensitivity study: the load's data-return port
    slot moves with the latency (at ``load_latency - 1``), and latencies
    below 2 degenerate to a simple single-cycle port table.
    """
    if load_latency < 1:
        raise ValueError(f"load latency must be >= 1, got {load_latency}")
    resources = (
        "mem_port0",
        "mem_port1",
        "aalu0",
        "aalu1",
        "add_stage0",
        "add_stage1",
        "mul_stage0",
        "mul_stage1",
        "fp_result_bus",
        "iu",
    )
    mem_ops = [
        Opcode("load", load_latency, _mem_alternatives("load", load_latency))
    ]
    # Stores take two cycles to commit, which is what gives Table 1's
    # exact VLIW anti-dependence delay (1 - latency(store) = -1) an edge
    # over the conservative column's 0.
    for name in ("store",):
        mem_ops.append(Opcode(name, 2, _mem_alternatives("store")))
    for name in (
        "cmp_lt",
        "cmp_le",
        "cmp_eq",
        "cmp_ne",
        "cmp_gt",
        "cmp_ge",
        "pand",
        "por",
        "pnot",
    ):
        mem_ops.append(Opcode(name, 2, _mem_alternatives("pred")))

    addr_ops = [
        Opcode("aadd", 3, _aalu_alternatives(), commutative=True),
        Opcode("asub", 3, _aalu_alternatives()),
        Opcode("copy", 3, _aalu_alternatives()),
        Opcode("limm", 3, _aalu_alternatives()),
    ]

    adder = _adder_table()
    add_ops = [
        Opcode("add", 4, [adder], commutative=True),
        Opcode("sub", 4, [adder]),
        Opcode("fadd", 4, [adder], commutative=True),
        Opcode("fsub", 4, [adder]),
        Opcode("fmin", 4, [adder], commutative=True),
        Opcode("fmax", 4, [adder], commutative=True),
        Opcode("fabs", 4, [adder]),
        Opcode("fneg", 4, [adder]),
        Opcode("and", 4, [adder], commutative=True),
        Opcode("or", 4, [adder], commutative=True),
        Opcode("xor", 4, [adder], commutative=True),
        Opcode("shl", 4, [adder]),
        Opcode("shr", 4, [adder]),
        Opcode("select", 4, [adder]),
    ]

    mult = _multiplier_table()
    mul_ops = [
        Opcode("mul", 5, [mult], commutative=True),
        Opcode("fmul", 5, [mult], commutative=True),
        Opcode("div", 22, [_divide_table(DIVIDE_BLOCK_CYCLES, 21)]),
        Opcode("fdiv", 22, [_divide_table(DIVIDE_BLOCK_CYCLES, 21)]),
        Opcode("fsqrt", 26, [_divide_table(SQRT_BLOCK_CYCLES, 25)]),
    ]

    iu_ops = [Opcode("brtop", 3, [ReservationTable("iu", [("iu", 0)])])]

    name = "cydra5" if load_latency == 20 else f"cydra5_load{load_latency}"
    return MachineDescription(
        name, resources, mem_ops + addr_ops + add_ops + mul_ops + iu_ops
    )
