"""Opcodes: latency plus one reservation-table alternative per functional unit.

An opcode that can execute on several functional units has several
*alternatives* (Section 2.1).  The alternatives need not be equivalent in
their resource usage — e.g. on the Cydra 5 a floating-point multiply could
run on either of two units but divides only on one — and the number of
alternatives is the opcode's "degrees of freedom", which the ResMII
heuristic sorts by.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.machine.resources import ReservationTable


@dataclass(frozen=True)
class Opcode:
    """A schedulable opcode.

    Attributes
    ----------
    name:
        Opcode mnemonic, e.g. ``"fadd"``.
    latency:
        Execution latency in cycles: a flow-dependent consumer may issue
        ``latency`` cycles after this operation issues.
    alternatives:
        One reservation table per functional unit that can execute the
        opcode.  Must be non-empty.
    commutative:
        Whether the first two source operands may be swapped (used by the
        front end's algebraic simplifications, not by the scheduler).
    """

    name: str
    latency: int
    alternatives: Tuple[ReservationTable, ...]
    commutative: bool = False

    def __init__(
        self,
        name: str,
        latency: int,
        alternatives: Iterable[ReservationTable],
        commutative: bool = False,
    ) -> None:
        alts = tuple(alternatives)
        if not alts:
            raise ValueError(f"opcode {name!r} has no alternatives")
        if latency < 0:
            raise ValueError(f"opcode {name!r} has negative latency")
        names = [a.name for a in alts]
        if len(set(names)) != len(names):
            raise ValueError(f"opcode {name!r} has duplicate alternative names")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "latency", int(latency))
        object.__setattr__(self, "alternatives", alts)
        object.__setattr__(self, "commutative", bool(commutative))

    @property
    def n_alternatives(self) -> int:
        """Degrees of freedom: the number of functional-unit choices."""
        return len(self.alternatives)
