"""JSON (de)serialization of machine descriptions.

Machine models are plain data — resources, opcodes, latencies,
reservation tables — so they round-trip losslessly.  This is how a
downstream user ships a target description alongside serialized graphs
and schedules (see :mod:`repro.ir.serialize`), or maintains machine
files outside Python.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.machine.machine import MachineDescription, MachineError
from repro.machine.opcodes import Opcode
from repro.machine.resources import ReservationTable

_FORMAT = "repro.machine.v1"


def machine_to_dict(machine: MachineDescription) -> Dict[str, Any]:
    """Serialize a machine description to a JSON-compatible dictionary."""
    opcodes = []
    for name in machine.opcode_names:
        opcode = machine.opcode(name)
        opcodes.append(
            {
                "name": opcode.name,
                "latency": opcode.latency,
                "commutative": opcode.commutative,
                "alternatives": [
                    {
                        "name": alternative.name,
                        "uses": [list(use) for use in alternative.uses],
                    }
                    for alternative in opcode.alternatives
                ],
            }
        )
    return {
        "format": _FORMAT,
        "name": machine.name,
        "resources": list(machine.resources),
        "opcodes": opcodes,
    }


def machine_from_dict(data: Dict[str, Any]) -> MachineDescription:
    """Rebuild a machine description from :func:`machine_to_dict` output."""
    if data.get("format") != _FORMAT:
        raise MachineError(
            f"not a serialized machine description: format "
            f"{data.get('format')!r}"
        )
    opcodes = []
    for record in data["opcodes"]:
        alternatives = [
            ReservationTable(
                alt["name"], [tuple(use) for use in alt["uses"]]
            )
            for alt in record["alternatives"]
        ]
        opcodes.append(
            Opcode(
                record["name"],
                record["latency"],
                alternatives,
                commutative=record.get("commutative", False),
            )
        )
    return MachineDescription(data["name"], data["resources"], opcodes)


def machine_to_json(
    machine: MachineDescription, indent: Optional[int] = None
) -> str:
    """Serialize a machine description to JSON text."""
    return json.dumps(machine_to_dict(machine), indent=indent)


def machine_from_json(text: str) -> MachineDescription:
    """Rebuild a machine description from JSON text."""
    return machine_from_dict(json.loads(text))
