"""Machine models: resources, reservation tables, opcodes, machines.

Resource usage is modelled exactly as in Section 2.1 of the paper: the
resource usage of an opcode is a *reservation table* — a list of
``(resource, time-offset)`` pairs relative to the issue cycle.  An opcode
may be executable on several functional units, in which case it has
multiple *alternatives*, each with its own reservation table.

The package ships the reconstructed Cydra 5 machine description used by the
paper's evaluation (Table 2) plus several smaller machines used by tests
and examples.
"""

from repro.machine.resources import (
    ReservationTable,
    TableKind,
    render_reservation_tables,
)
from repro.machine.opcodes import Opcode
from repro.machine.machine import MachineDescription, MachineError
from repro.machine.cydra5 import cydra5, cydra5_variant
from repro.machine.simple import (
    single_alu_machine,
    two_alu_machine,
    bus_conflict_machine,
    superscalar_machine,
)
from repro.machine.serialize import (
    machine_from_dict,
    machine_from_json,
    machine_to_dict,
    machine_to_json,
)

__all__ = [
    "machine_from_dict",
    "machine_from_json",
    "machine_to_dict",
    "machine_to_json",
    "ReservationTable",
    "TableKind",
    "render_reservation_tables",
    "Opcode",
    "MachineDescription",
    "MachineError",
    "cydra5",
    "cydra5_variant",
    "single_alu_machine",
    "two_alu_machine",
    "bus_conflict_machine",
    "superscalar_machine",
]
