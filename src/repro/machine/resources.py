"""Reservation tables (Section 2.1, Figure 1).

A reservation table records, for one opcode alternative, which machine
resources are used and at which cycle offsets relative to the issue cycle.
The paper classifies tables into three kinds, in increasing order of
scheduling difficulty:

* **simple** — a single resource for a single cycle, on the issue cycle;
* **block** — a single resource for multiple consecutive cycles starting at
  the issue cycle;
* **complex** — anything else (several resources, non-contiguous usage,
  usage not starting at issue).

Block and complex tables are what make iterative (backtracking) scheduling
necessary in practice.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


class TableKind(enum.Enum):
    """Classification of a reservation table (Section 2.1)."""

    SIMPLE = "simple"
    BLOCK = "block"
    COMPLEX = "complex"


@dataclass(frozen=True)
class ReservationTable:
    """Resource usage of one opcode alternative.

    Attributes
    ----------
    name:
        Label for the alternative (typically the functional-unit instance,
        e.g. ``"mem_port0"``).
    uses:
        Sorted tuple of ``(resource, offset)`` pairs: resource names and the
        cycle offsets, relative to issue, at which they are occupied.
    """

    name: str
    uses: Tuple[Tuple[str, int], ...]

    def __init__(self, name: str, uses: Iterable[Tuple[str, int]]) -> None:
        normalized = tuple(sorted((str(r), int(t)) for r, t in uses))
        if not normalized:
            raise ValueError(f"reservation table {name!r} uses no resources")
        seen = set()
        for resource, offset in normalized:
            if offset < 0:
                raise ValueError(
                    f"reservation table {name!r}: negative offset {offset}"
                )
            if (resource, offset) in seen:
                raise ValueError(
                    f"reservation table {name!r}: duplicate use of "
                    f"{resource!r} at offset {offset}"
                )
            seen.add((resource, offset))
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "uses", normalized)

    @property
    def resources(self) -> Tuple[str, ...]:
        """The distinct resources this table touches, sorted."""
        return tuple(sorted({r for r, _ in self.uses}))

    @property
    def span(self) -> int:
        """Number of cycles from issue to the last resource use, inclusive."""
        return max(t for _, t in self.uses) + 1

    @property
    def kind(self) -> TableKind:
        """Classify the table as simple, block or complex."""
        resources = {r for r, _ in self.uses}
        if len(resources) > 1:
            return TableKind.COMPLEX
        offsets = sorted(t for _, t in self.uses)
        if offsets == [0]:
            return TableKind.SIMPLE
        if offsets == list(range(len(offsets))):
            return TableKind.BLOCK
        return TableKind.COMPLEX

    def usage_count(self) -> Dict[str, int]:
        """Cycles of use per resource — the quantity ResMII totals up."""
        counts: Dict[str, int] = {}
        for resource, _ in self.uses:
            counts[resource] = counts.get(resource, 0) + 1
        return counts

    def render(self) -> str:
        """ASCII rendering in the style of Figure 1 of the paper."""
        return render_reservation_tables([self])


def render_reservation_tables(tables: Sequence[ReservationTable]) -> str:
    """Render one or more reservation tables side by side, Figure-1 style.

    Each row is a cycle offset; each column a resource; an ``X`` marks a
    reservation.  Resources are the union across the given tables so that
    inter-table conflicts (e.g. a shared result bus) are visually aligned.
    """
    resources: List[str] = []
    for table in tables:
        for resource in table.resources:
            if resource not in resources:
                resources.append(resource)
    depth = max(table.span for table in tables)
    width = max(len(r) for r in resources)
    width = max(width, 4)
    header = "Time  " + "  ".join(r.ljust(width) for r in resources)
    lines = [header, "-" * len(header)]
    for offset in range(depth):
        cells = []
        for resource in resources:
            marks = [
                table.name
                for table in tables
                if (resource, offset) in set(table.uses)
            ]
            cell = "X" if marks else ""
            cells.append(cell.ljust(width))
        lines.append(f"{offset:>4}  " + "  ".join(cells))
    return "\n".join(lines)
