"""Reservation tables (Section 2.1, Figure 1).

A reservation table records, for one opcode alternative, which machine
resources are used and at which cycle offsets relative to the issue cycle.
The paper classifies tables into three kinds, in increasing order of
scheduling difficulty:

* **simple** — a single resource for a single cycle, on the issue cycle;
* **block** — a single resource for multiple consecutive cycles starting at
  the issue cycle;
* **complex** — anything else (several resources, non-contiguous usage,
  usage not starting at issue).

Block and complex tables are what make iterative (backtracking) scheduling
necessary in practice.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple


class TableKind(enum.Enum):
    """Classification of a reservation table (Section 2.1)."""

    SIMPLE = "simple"
    BLOCK = "block"
    COMPLEX = "complex"


@dataclass(frozen=True)
class ReservationTable:
    """Resource usage of one opcode alternative.

    Attributes
    ----------
    name:
        Label for the alternative (typically the functional-unit instance,
        e.g. ``"mem_port0"``).
    uses:
        Sorted tuple of ``(resource, offset)`` pairs: resource names and the
        cycle offsets, relative to issue, at which they are occupied.
    """

    name: str
    uses: Tuple[Tuple[str, int], ...]

    def __init__(self, name: str, uses: Iterable[Tuple[str, int]]) -> None:
        normalized = tuple(sorted((str(r), int(t)) for r, t in uses))
        if not normalized:
            raise ValueError(f"reservation table {name!r} uses no resources")
        seen = set()
        for resource, offset in normalized:
            if offset < 0:
                raise ValueError(
                    f"reservation table {name!r}: negative offset {offset}"
                )
            if (resource, offset) in seen:
                raise ValueError(
                    f"reservation table {name!r}: duplicate use of "
                    f"{resource!r} at offset {offset}"
                )
            seen.add((resource, offset))
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "uses", normalized)

    @property
    def resources(self) -> Tuple[str, ...]:
        """The distinct resources this table touches, sorted."""
        return tuple(sorted({r for r, _ in self.uses}))

    @property
    def span(self) -> int:
        """Number of cycles from issue to the last resource use, inclusive."""
        return max(t for _, t in self.uses) + 1

    @property
    def kind(self) -> TableKind:
        """Classify the table as simple, block or complex."""
        resources = {r for r, _ in self.uses}
        if len(resources) > 1:
            return TableKind.COMPLEX
        offsets = sorted(t for _, t in self.uses)
        if offsets == [0]:
            return TableKind.SIMPLE
        if offsets == list(range(len(offsets))):
            return TableKind.BLOCK
        return TableKind.COMPLEX

    def usage_count(self) -> Dict[str, int]:
        """Cycles of use per resource — the quantity ResMII totals up."""
        counts: Dict[str, int] = {}
        for resource, _ in self.uses:
            counts[resource] = counts.get(resource, 0) + 1
        return counts

    def render(self) -> str:
        """ASCII rendering in the style of Figure 1 of the paper."""
        return render_reservation_tables([self])


# ----------------------------------------------------------------------
# Bitmask compilation (the scheduler's O(1)-conflict fast path)
#
# A reservation table probed against a modulo reservation table at II
# touches, for each use ``(resource, offset)``, the cell
# ``(resource, (time + offset) mod II)``.  Assigning every resource a
# stable integer *row* turns the whole (resource x modulo-slot) grid into
# one integer: bit ``row * II + slot``.  A table then compiles — once per
# (row assignment, II) — into one mask per issue slot in ``0..II-1``, and
# a placement test against the occupancy integer is a single AND.


class CompiledAlternative:
    """One :class:`ReservationTable` compiled to bitmasks at a fixed II.

    Attributes
    ----------
    table:
        The source reservation table.
    ii:
        The initiation interval the masks are folded by.
    slot_masks:
        ``slot_masks[t % ii]`` is the occupancy mask of placing the table
        at time ``t`` — bit ``1 + row * ii + slot`` set for every cell
        used.  Bit 0 is the *sentinel*: always set in an MRT's occupancy,
        and set in every slot mask of a self-conflicting table, so the
        single AND also answers "unplaceable at this II" with no extra
        branch on the probe path.
    self_conflicting:
        True when two uses of one resource fold onto the same modulo slot
        at this II, making the table unplaceable whatever the schedule
        holds (detected once here, never re-derived per probe).
    row_uses:
        The deduplicated ``(row, offset % ii)`` pairs of the table's
        uses, sorted.  The batched FindTimeSlot kernel consumes these:
        for each pair, rotating the row's II-bit occupancy right by the
        folded offset yields the issue slots this use alone would
        conflict at, and OR-ing the rotations over ``row_uses`` yields
        the whole conflict-slot bit-vector in one sweep.
    """

    __slots__ = ("table", "ii", "slot_masks", "self_conflicting", "row_uses")

    def __init__(
        self,
        table: ReservationTable,
        ii: int,
        slot_masks: Tuple[int, ...],
        self_conflicting: bool,
        row_uses: Tuple[Tuple[int, int], ...] = (),
    ) -> None:
        self.table = table
        self.ii = ii
        self.slot_masks = slot_masks
        self.self_conflicting = self_conflicting
        self.row_uses = row_uses

    @property
    def name(self) -> str:
        """The source table's name (so traces read the same either way)."""
        return self.table.name

    @property
    def uses(self) -> Tuple[Tuple[str, int], ...]:
        """The source table's uses (for slow-path conflict reporting)."""
        return self.table.uses

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledAlternative({self.table.name!r}, ii={self.ii}, "
            f"self_conflicting={self.self_conflicting})"
        )


def compile_alternative(
    table: ReservationTable, rows: Mapping[str, int], ii: int
) -> CompiledAlternative:
    """Fold ``table`` at ``ii`` into one occupancy mask per issue slot.

    ``rows`` maps resource names to their bit rows; every resource the
    table touches must be present.  Self-conflict (two uses landing on
    one bit) is II-dependent but issue-slot-independent, so it is
    detected while building the slot-0 mask — and encoded as the
    sentinel bit 0 in every slot mask, which an MRT keeps permanently
    set in its occupancy.
    """
    if ii < 1:
        raise ValueError(f"II must be >= 1, got {ii}")
    self_conflicting = False
    masks = []
    for issue in range(ii):
        mask = 0
        for resource, offset in table.uses:
            bit = 1 << (1 + rows[resource] * ii + (issue + offset) % ii)
            if issue == 0 and mask & bit:
                self_conflicting = True
            mask |= bit
        masks.append(mask)
    if self_conflicting:
        masks = [mask | 1 for mask in masks]
    row_uses = tuple(
        sorted({(rows[resource], offset % ii) for resource, offset in table.uses})
    )
    return CompiledAlternative(
        table, ii, tuple(masks), self_conflicting, row_uses
    )


def compile_linear_uses(
    table: ReservationTable, rows: Mapping[str, int]
) -> Tuple[Tuple[int, int], ...]:
    """Compile ``table`` for a *linear* (acyclic) bit-grid.

    Returns ``(row, offset_mask)`` pairs, one per distinct resource: bit
    ``o`` of ``offset_mask`` is set when the table uses the resource at
    cycle offset ``o``.  Placing the table at time ``t`` occupies
    ``offset_mask << t`` within the resource's (unbounded, growable)
    occupancy integer — time never folds, so a plain shift suffices.
    """
    per_row: Dict[int, int] = {}
    for resource, offset in table.uses:
        row = rows[resource]
        per_row[row] = per_row.get(row, 0) | (1 << offset)
    return tuple(sorted(per_row.items()))


def render_reservation_tables(tables: Sequence[ReservationTable]) -> str:
    """Render one or more reservation tables side by side, Figure-1 style.

    Each row is a cycle offset; each column a resource; an ``X`` marks a
    reservation.  Resources are the union across the given tables so that
    inter-table conflicts (e.g. a shared result bus) are visually aligned.
    """
    resources: List[str] = []
    for table in tables:
        for resource in table.resources:
            if resource not in resources:
                resources.append(resource)
    depth = max(table.span for table in tables)
    width = max(len(r) for r in resources)
    width = max(width, 4)
    header = "Time  " + "  ".join(r.ljust(width) for r in resources)
    lines = [header, "-" * len(header)]
    for offset in range(depth):
        cells = []
        for resource in resources:
            marks = [
                table.name
                for table in tables
                if (resource, offset) in set(table.uses)
            ]
            cell = "X" if marks else ""
            cells.append(cell.ljust(width))
        lines.append(f"{offset:>4}  " + "  ".join(cells))
    return "\n".join(lines)
