"""Small machine models used by tests, examples and ablation benchmarks.

These machines deliberately span the three reservation-table kinds of
Section 2.1: :func:`single_alu_machine` and :func:`two_alu_machine` have
only simple tables, :func:`bus_conflict_machine` reproduces the complex
tables of Figure 1 exactly, and :func:`superscalar_machine` is a short
unit-ish-latency machine intended for the conservative delay model.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence

from repro.machine.machine import MachineDescription
from repro.machine.opcodes import Opcode
from repro.machine.resources import ReservationTable

#: Opcodes every machine in this module understands.  They mirror the
#: subset of the Cydra 5 repertoire that the loop front end emits, so a
#: lowered loop can be retargeted across machines in tests.
_COMMON_OPCODES = (
    # name, latency class
    ("load", "mem"),
    ("store", "mem"),
    ("add", "alu"),
    ("sub", "alu"),
    ("fadd", "alu"),
    ("fsub", "alu"),
    ("fmin", "alu"),
    ("fmax", "alu"),
    ("fabs", "alu"),
    ("fneg", "alu"),
    ("and", "alu"),
    ("or", "alu"),
    ("xor", "alu"),
    ("shl", "alu"),
    ("shr", "alu"),
    ("select", "alu"),
    ("aadd", "alu"),
    ("asub", "alu"),
    ("copy", "alu"),
    ("limm", "alu"),
    ("mul", "mul"),
    ("fmul", "mul"),
    ("div", "div"),
    ("fdiv", "div"),
    ("fsqrt", "div"),
    ("cmp_lt", "alu"),
    ("cmp_le", "alu"),
    ("cmp_eq", "alu"),
    ("cmp_ne", "alu"),
    ("cmp_gt", "alu"),
    ("cmp_ge", "alu"),
    ("pand", "alu"),
    ("por", "alu"),
    ("pnot", "alu"),
    ("brtop", "alu"),
)


def _simple_alts(units: Sequence[str]) -> List[ReservationTable]:
    return [ReservationTable(unit, [(unit, 0)]) for unit in units]


def _uniform_machine(
    name: str, units: Sequence[str], latencies: dict
) -> MachineDescription:
    """A machine where every opcode runs on every unit with a simple table."""
    opcodes = [
        Opcode(op, latencies[cls], _simple_alts(units))
        for op, cls in _COMMON_OPCODES
    ]
    return MachineDescription(name, tuple(units), opcodes)


@lru_cache(maxsize=1)
def single_alu_machine() -> MachineDescription:
    """One universal ALU; every opcode uses it for one cycle at issue.

    With a single resource and simple tables, ResMII equals the operation
    count and schedules are easy to reason about by hand, which makes this
    the machine of choice for deterministic unit tests.
    """
    latencies = {"mem": 2, "alu": 1, "mul": 3, "div": 8}
    return _uniform_machine("single_alu", ("alu",), latencies)


@lru_cache(maxsize=1)
def two_alu_machine() -> MachineDescription:
    """Two universal ALUs; every opcode has two simple alternatives."""
    latencies = {"mem": 3, "alu": 1, "mul": 3, "div": 8}
    return _uniform_machine("two_alu", ("alu0", "alu1"), latencies)


@lru_cache(maxsize=1)
def superscalar_machine() -> MachineDescription:
    """Four universal units with short latencies.

    Intended to be paired with :class:`repro.ir.DelayModel.CONSERVATIVE`,
    mimicking a superscalar whose latencies are not architecturally exposed.
    """
    latencies = {"mem": 2, "alu": 1, "mul": 2, "div": 4}
    return _uniform_machine(
        "superscalar", ("u0", "u1", "u2", "u3"), latencies
    )


@lru_cache(maxsize=1)
def bus_conflict_machine() -> MachineDescription:
    """The machine of Figure 1: shared source and result buses.

    An add and a multiply cannot issue in the same cycle (source-bus
    collision) and an add may not issue two cycles after a multiply
    (result-bus collision), exactly as the paper's Figure 1 describes.
    Only ``fadd``-class and ``fmul``-class opcodes exist here.
    """
    resources = (
        "src_bus0",
        "src_bus1",
        "alu_stage0",
        "alu_stage1",
        "mul_stage0",
        "mul_stage1",
        "mul_stage2",
        "result_bus",
    )
    add_table = ReservationTable(
        "alu",
        [
            ("src_bus0", 0),
            ("src_bus1", 0),
            ("alu_stage0", 1),
            ("alu_stage1", 2),
            ("result_bus", 3),
        ],
    )
    mul_table = ReservationTable(
        "multiplier",
        [
            ("src_bus0", 0),
            ("src_bus1", 0),
            ("mul_stage0", 1),
            ("mul_stage1", 2),
            ("mul_stage2", 3),
            ("result_bus", 4),
        ],
    )
    opcodes = [
        Opcode("fadd", 4, [add_table], commutative=True),
        Opcode("fsub", 4, [add_table]),
        Opcode("add", 4, [add_table], commutative=True),
        Opcode("sub", 4, [add_table]),
        Opcode("fmul", 5, [mul_table], commutative=True),
        Opcode("mul", 5, [mul_table], commutative=True),
    ]
    return MachineDescription("bus_conflict", resources, opcodes)
