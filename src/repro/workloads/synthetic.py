"""Synthetic dependence-graph generator calibrated to Table 3.

The paper's corpus is private, but its Section 4.2 publishes the
distribution statistics that matter to the scheduler: operation counts
(median 12, mean 19.5, max 163, skewed toward small loops), the fraction
of loops with no non-trivial SCC (77%), SCC sizes (93% singletons, long
thin tail), and the prevalence of trivial address-increment recurrences.
This generator draws graphs matching those shapes:

* operation count from a clamped log-normal (median ~12, mean ~19.5);
* a program-ordered DAG of arithmetic/memory operations with short-range
  flow edges (operand fan-in 1-2, as real expression trees have);
* one trivial ``aadd`` address recurrence per "array" (a distance-1
  self-loop — the paper's "typically the add that increments an address");
* with calibrated probability, one or more non-trivial SCCs built by
  closing a dependence chain with a distance-1..2 back edge;
* a loop-closing ``brtop``.

The graphs carry no executable semantics (no ``operands`` descriptors) —
they exist to exercise scheduling, not simulation; the hand-written DSL
kernels cover semantic verification.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.ir.edges import DependenceKind
from repro.ir.graph import DependenceGraph

#: Opcode mix for the DAG portion, loosely matching scientific loop bodies
#: compiled for the Cydra 5 (memory traffic heavy, adds over multiplies,
#: rare divides/square roots, a sprinkle of predicate definitions).
_OPCODE_WEIGHTS: Sequence[Tuple[str, float]] = (
    ("load", 0.22),
    ("store", 0.09),
    ("fadd", 0.17),
    ("fsub", 0.07),
    ("fmul", 0.13),
    ("fdiv", 0.015),
    ("fsqrt", 0.005),
    ("cmp_lt", 0.03),
    ("cmp_ge", 0.02),
    ("select", 0.04),
    ("copy", 0.05),
    ("aadd", 0.08),
    ("fmin", 0.02),
    ("fmax", 0.02),
    ("fneg", 0.02),
    ("fabs", 0.02),
)


@dataclass
class SyntheticConfig:
    """Knobs for the generator; defaults reproduce Table 3's shapes."""

    min_ops: int = 4
    max_ops: int = 163
    #: log-normal parameters for the op count: median = exp(mu) ~ 12,
    #: mean = exp(mu + sigma^2/2) ~ 19.5.
    log_mu: float = 2.48
    log_sigma: float = 0.97
    #: fraction of loops containing at least one non-trivial SCC (the
    #: paper: 1 - 0.773).
    p_recurrent: float = 0.227
    #: geometric tail for extra SCCs in a recurrent loop (max observed: 6).
    p_extra_scc: float = 0.25
    max_sccs: int = 6
    #: SCC size: 2 + geometric, clamped (paper max: 42 nodes).
    p_scc_growth: float = 0.55
    max_scc_size: int = 42
    #: operand fan-in window: how far back a flow edge may reach.
    fanin_window: int = 12
    #: probability that a non-first op takes a second operand edge.
    p_second_operand: float = 0.55
    #: address-increment recurrences per loop: 1 + binomial-ish extras.
    max_address_recurrences: int = 4


def _sample_op_count(rng: random.Random, config: SyntheticConfig) -> int:
    value = int(round(rng.lognormvariate(config.log_mu, config.log_sigma)))
    return max(config.min_ops, min(config.max_ops, value))


def _pick_opcode(rng: random.Random) -> str:
    roll = rng.random()
    acc = 0.0
    for opcode, weight in _OPCODE_WEIGHTS:
        acc += weight
        if roll < acc:
            return opcode
    return "fadd"


def synthetic_graph(
    machine,
    seed: int,
    config: Optional[SyntheticConfig] = None,
    name: Optional[str] = None,
) -> DependenceGraph:
    """Generate one random, sealed dependence graph for ``machine``."""
    config = config or SyntheticConfig()
    rng = random.Random(seed)
    graph = DependenceGraph(machine, name=name or f"synthetic{seed}")

    total = _sample_op_count(rng, config)
    # Address recurrences: trivial SCCs with a reflexive distance-1 edge.
    n_address = min(
        1 + rng.randrange(config.max_address_recurrences), max(1, total // 5)
    )
    address_ops: List[int] = []
    for index in range(n_address):
        op = graph.add_operation("aadd", dest=f"&a{index}", role="address")
        graph.add_edge(op, op, DependenceKind.FLOW, distance=1)
        address_ops.append(op)

    body_ops: List[int] = []
    n_body = max(2, total - n_address - 1)  # reserve one slot for brtop
    for index in range(n_body):
        opcode = _pick_opcode(rng)
        dest = None if opcode == "store" else f"v{index}"
        op = graph.add_operation(opcode, dest=dest)
        # Wire operand flow edges to recent producers (expression-tree
        # locality) or, for memory operations, to an address recurrence.
        if opcode in ("load", "store"):
            graph.add_edge(
                rng.choice(address_ops), op, DependenceKind.FLOW, distance=1
            )
        producers = [
            p for p in body_ops[-config.fanin_window :]
            if graph.operation(p).dest is not None
        ]
        if producers and opcode != "load":
            graph.add_edge(rng.choice(producers), op, DependenceKind.FLOW)
            if len(producers) > 1 and rng.random() < config.p_second_operand:
                graph.add_edge(rng.choice(producers), op, DependenceKind.FLOW)
        body_ops.append(op)

    # Occasional memory anti/output edges between stores and loads, as the
    # dependence analyzer would produce for overlapping array windows.
    stores = [op for op in body_ops if graph.operation(op).opcode == "store"]
    loads = [op for op in body_ops if graph.operation(op).opcode == "load"]
    for store in stores:
        if loads and rng.random() < 0.35:
            load = rng.choice(loads)
            distance = rng.randrange(0, 3)
            if load < store:
                graph.add_edge(
                    load, store, DependenceKind.ANTI, distance=distance
                )
            elif distance > 0:
                graph.add_edge(
                    store, load, DependenceKind.FLOW, distance=distance
                )

    # Non-trivial SCCs: close a chain of existing operations.
    if rng.random() < config.p_recurrent and len(body_ops) >= 2:
        n_sccs = 1
        while n_sccs < config.max_sccs and rng.random() < config.p_extra_scc:
            n_sccs += 1
        available = [
            op for op in body_ops if graph.operation(op).dest is not None
        ]
        rng.shuffle(available)
        for _ in range(n_sccs):
            size = 2
            while (
                size < config.max_scc_size
                and rng.random() < config.p_scc_growth
            ):
                size += 1
            if len(available) < size:
                break
            members = sorted(available[:size])
            del available[:size]
            for left, right in zip(members, members[1:]):
                graph.add_edge(left, right, DependenceKind.FLOW)
            graph.add_edge(
                members[-1],
                members[0],
                DependenceKind.FLOW,
                distance=rng.choice((1, 1, 1, 2)),
            )

    brtop = graph.add_operation("brtop", role="loop_control")
    graph.add_edge(brtop, brtop, DependenceKind.FLOW, distance=1, delay=1)
    return graph.seal()
