"""Corpus assembly and the synthetic execution profile.

The paper's corpus: 1327 loops (1002 Perfect Club, 298 SPEC, 27 LFK), of
which 597 executed under the profiling inputs.  Ours: every hand-written
DSL kernel (compiled by the front end) plus synthetic graphs to reach the
same total, each loop carrying a profile — ``entry_freq`` (times the loop
is entered) and ``loop_freq`` (total body traversals) — for the paper's
execution-time metric ``EntryFreq*SL + (LoopFreq-EntryFreq)*II``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.ir.graph import DependenceGraph
from repro.loopir import compile_loop_full
from repro.workloads.kernels import KERNELS
from repro.workloads.synthetic import SyntheticConfig, synthetic_graph

#: The paper's corpus size and executed-loop count (Sections 4.1, 4.3).
PAPER_CORPUS_SIZE = 1327
PAPER_EXECUTED_FRACTION = 597 / 1327


@dataclass
class CorpusLoop:
    """One loop of the evaluation corpus.

    Attributes
    ----------
    name, graph, category:
        Identity and the sealed dependence graph.
    entry_freq / loop_freq:
        The execution profile: times entered and total body traversals.
    executed:
        Whether the loop runs under the profiling inputs (the paper's
        execution-time statistics cover only executed loops).
    lowered:
        Front-end metadata for DSL kernels (None for synthetic graphs);
        loops with it can be verified on the simulator.
    """

    name: str
    graph: DependenceGraph
    category: str
    entry_freq: int
    loop_freq: int
    executed: bool
    lowered: Optional[object] = None

    @property
    def trip_count(self) -> float:
        """Average iterations per entry."""
        return self.loop_freq / self.entry_freq


def _profile(rng: random.Random, trip_hint: Optional[int]) -> tuple:
    """Draw (entry_freq, loop_freq) with a long-tailed trip count."""
    entry = max(1, int(round(rng.lognormvariate(1.2, 1.0))))
    if trip_hint is not None:
        trip = trip_hint
    else:
        trip = max(2, min(10000, int(round(rng.lognormvariate(3.9, 1.2)))))
    return entry, entry * trip


def build_corpus(
    machine,
    n_synthetic: int = 200,
    seed: int = 0,
    include_kernels: bool = True,
    config: Optional[SyntheticConfig] = None,
) -> List[CorpusLoop]:
    """Build a corpus: all DSL kernels plus ``n_synthetic`` random graphs."""
    rng = random.Random(seed)
    corpus: List[CorpusLoop] = []
    if include_kernels:
        for name in sorted(KERNELS):
            spec = KERNELS[name]
            lowered = compile_loop_full(spec.source, machine, name=name)
            entry, loop_freq = _profile(rng, spec.trip)
            corpus.append(
                CorpusLoop(
                    name=name,
                    graph=lowered.graph,
                    category=spec.category,
                    entry_freq=entry,
                    loop_freq=loop_freq,
                    executed=True,
                    lowered=lowered,
                )
            )
    for index in range(n_synthetic):
        graph = synthetic_graph(
            machine, seed=seed * 1_000_003 + index, config=config
        )
        entry, loop_freq = _profile(rng, None)
        corpus.append(
            CorpusLoop(
                name=graph.name,
                graph=graph,
                category="synthetic",
                entry_freq=entry,
                loop_freq=loop_freq,
                executed=rng.random() < PAPER_EXECUTED_FRACTION,
            )
        )
    return corpus


def paper_sized_corpus(machine, seed: int = 0) -> List[CorpusLoop]:
    """The full 1327-loop corpus mirroring the paper's scale."""
    n_synthetic = PAPER_CORPUS_SIZE - len(KERNELS)
    return build_corpus(machine, n_synthetic=n_synthetic, seed=seed)
