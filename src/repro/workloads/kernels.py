"""Hand-written DSL kernels with real semantics.

These loops are in the style of the paper's sources: the Livermore Fortran
Kernels (adapted to one-dimensional form where the original is 2-D), BLAS-1
and BLAS-2 fragments, stencils, linear recurrences, and IF-heavy loops from
the Perfect-Club/SPEC mold.  Every kernel compiles through the front end
and is verified end-to-end against the sequential oracle in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class KernelSpec:
    """A named DSL kernel.

    Attributes
    ----------
    name:
        Unique kernel name.
    source:
        DSL text.
    category:
        Rough provenance label: ``lfk`` (Livermore-style), ``blas``,
        ``stencil``, ``recurrence``, ``predicated``, ``mixed``,
        ``irregular`` (indirect gather/scatter access).
    trip:
        A representative trip count, used by the synthetic profile.
    """

    name: str
    source: str
    category: str
    trip: int = 100


_RAW: List[KernelSpec] = [
    # ------------------------------------------------------------------
    # Livermore-kernel style (adapted to single-subscript form)
    # ------------------------------------------------------------------
    KernelSpec(
        "lfk1_hydro",
        """
for k in n:
    x[k] = q + y[k] * (r * z[k+10] + t * z[k+11])
""",
        "lfk",
        400,
    ),
    KernelSpec(
        "lfk2_iccg_like",
        """
for i in n:
    x[i] = x[i] - z[i] * x[i+4] - z[i+1] * x[i+5]
""",
        "lfk",
        200,
    ),
    KernelSpec(
        "lfk3_inner_product",
        """
for k in n:
    q = q + z[k] * x[k]
""",
        "lfk",
        1000,
    ),
    KernelSpec(
        "lfk4_banded_like",
        """
for k in n:
    q = q - x[k] * y[k+3] - x[k+1] * y[k+2]
""",
        "lfk",
        300,
    ),
    KernelSpec(
        "lfk5_tridiag",
        """
for i in n:
    x[i] = z[i] * (y[i] - x[i-1])
""",
        "lfk",
        1000,
    ),
    KernelSpec(
        "lfk6_recurrence",
        """
for i in n:
    w = w + b[i] * w
""",
        "lfk",
        60,
    ),
    KernelSpec(
        "lfk7_state_eq",
        """
for k in n:
    x[k] = u[k] + r * (z[k] + r * y[k]) + t * (u[k+3] + r * (u[k+2] + r * u[k+1]) + t * (u[k+6] + q * (u[k+5] + q * u[k+4])))
""",
        "lfk",
        120,
    ),
    KernelSpec(
        "lfk9_integrate",
        """
for i in n:
    px[i] = dm28 * px[i+12] + dm27 * px[i+11] + dm26 * px[i+10] + dm25 * px[i+9] + dm24 * px[i+8] + dm23 * px[i+7] + dm22 * px[i+6] + c0 * (px[i+4] + px[i+5]) + px[i+2]
""",
        "lfk",
        100,
    ),
    KernelSpec(
        "lfk10_difference",
        """
for i in n:
    ar = cx[i+4]
    br = ar - px[i+4]
    px[i+4] = ar
    cr = br - px[i+5]
    px[i+5] = br
    px[i+6] = cr - px[i+6]
""",
        "lfk",
        100,
    ),
    KernelSpec(
        "lfk11_first_sum",
        """
for k in n:
    x[k] = x[k-1] + y[k]
""",
        "lfk",
        1000,
    ),
    KernelSpec(
        "lfk12_first_diff",
        """
for k in n:
    x[k] = y[k+1] - y[k]
""",
        "lfk",
        1000,
    ),
    KernelSpec(
        "lfk22_planckian",
        """
for k in n:
    y[k] = u[k] / v[k]
    w[k] = x[k] / (2.0 * y[k] + 1.0)
""",
        "lfk",
        100,
    ),
    # ------------------------------------------------------------------
    # BLAS-1 / BLAS-2 fragments
    # ------------------------------------------------------------------
    KernelSpec(
        "saxpy",
        """
for i in n:
    y[i] = y[i] + alpha * x[i]
""",
        "blas",
        1000,
    ),
    KernelSpec(
        "sdot",
        """
for i in n:
    s = s + x[i] * y[i]
""",
        "blas",
        1000,
    ),
    KernelSpec(
        "sscal",
        """
for i in n:
    x[i] = alpha * x[i]
""",
        "blas",
        1000,
    ),
    KernelSpec(
        "scopy",
        """
for i in n:
    y[i] = x[i]
""",
        "blas",
        1000,
    ),
    KernelSpec(
        "srot",
        """
for i in n:
    t = c * x[i] + s * y[i]
    y[i] = c * y[i] - s * x[i]
    x[i] = t
""",
        "blas",
        500,
    ),
    KernelSpec(
        "gemv_row",
        """
for j in n:
    acc = acc + a[j] * x[j]
""",
        "blas",
        200,
    ),
    KernelSpec(
        "ger_update",
        """
for j in n:
    a[j] = a[j] + alpha * x0 * y[j]
""",
        "blas",
        200,
    ),
    KernelSpec(
        "snrm2_ssq",
        """
for i in n:
    s = s + x[i] * x[i]
""",
        "blas",
        1000,
    ),
    KernelSpec(
        "sasum_abs",
        """
for i in n:
    s = s + abs(x[i])
""",
        "blas",
        1000,
    ),
    # ------------------------------------------------------------------
    # Stencils
    # ------------------------------------------------------------------
    KernelSpec(
        "stencil3",
        """
for i in n:
    b[i] = w0 * a[i-1] + w1 * a[i] + w2 * a[i+1]
""",
        "stencil",
        500,
    ),
    KernelSpec(
        "stencil5",
        """
for i in n:
    b[i] = 0.0625 * (a[i-2] + a[i+2]) + 0.25 * (a[i-1] + a[i+1]) + 0.375 * a[i]
""",
        "stencil",
        500,
    ),
    KernelSpec(
        "jacobi_sweep",
        """
for i in n:
    xnew[i] = 0.5 * (x[i-1] + x[i+1]) - 0.5 * h2 * f[i]
""",
        "stencil",
        400,
    ),
    KernelSpec(
        "gauss_seidel",
        """
for i in n:
    x[i] = 0.5 * (x[i-1] + x[i+1]) - 0.5 * h2 * f[i]
""",
        "stencil",
        400,
    ),
    KernelSpec(
        "wave_update",
        """
for i in n:
    unew[i] = 2.0 * u[i] - uold[i] + c2 * (u[i+1] - 2.0 * u[i] + u[i-1])
""",
        "stencil",
        300,
    ),
    # ------------------------------------------------------------------
    # Recurrences
    # ------------------------------------------------------------------
    KernelSpec(
        "prefix_product",
        """
for i in n:
    p = p * (1.0 + r * x[i])
    y[i] = p
""",
        "recurrence",
        200,
    ),
    KernelSpec(
        "iir_filter1",
        """
for i in n:
    s = a0 * x[i] + b1 * s
    y[i] = s
""",
        "recurrence",
        400,
    ),
    KernelSpec(
        "iir_filter2",
        """
for i in n:
    y[i] = a0 * x[i] + b1 * y[i-1] + b2 * y[i-2]
""",
        "recurrence",
        400,
    ),
    KernelSpec(
        "horner_scan",
        """
for i in n:
    acc = acc * t + c[i]
""",
        "recurrence",
        60,
    ),
    KernelSpec(
        "exp_smooth",
        """
for i in n:
    m = m + alpha * (x[i] - m)
    y[i] = m
""",
        "recurrence",
        400,
    ),
    KernelSpec(
        "two_accumulators",
        """
for i in n:
    even = even + x[i] * w0
    odd = odd + x[i+1] * w1
""",
        "recurrence",
        500,
    ),
    # ------------------------------------------------------------------
    # Predicated / IF-heavy loops
    # ------------------------------------------------------------------
    KernelSpec(
        "clip",
        """
for i in n:
    t = x[i]
    if t > hi:
        t = hi
    if t < lo:
        t = lo
    y[i] = t
""",
        "predicated",
        400,
    ),
    KernelSpec(
        "abs_sum_signs",
        """
for i in n:
    if x[i] >= 0.0:
        pos = pos + x[i]
    else:
        neg = neg + x[i]
""",
        "predicated",
        400,
    ),
    KernelSpec(
        "threshold_store",
        """
for i in n:
    t = a[i] - b[i]
    if abs(t) > eps:
        c[i] = t
""",
        "predicated",
        300,
    ),
    KernelSpec(
        "minmax_track",
        """
for i in n:
    lo2 = min(lo2, x[i])
    hi2 = max(hi2, x[i])
""",
        "predicated",
        500,
    ),
    KernelSpec(
        "deadband",
        """
for i in n:
    t = x[i]
    if t > -band and t < band:
        t = 0.0
    y[i] = t
""",
        "predicated",
        300,
    ),
    KernelSpec(
        "select_chain",
        """
for i in n:
    t = a[i]
    if t > c1:
        u = t * s1
    else:
        if t > c2:
            u = t * s2
        else:
            u = t * s3
    b[i] = u
""",
        "predicated",
        300,
    ),
    # ------------------------------------------------------------------
    # Mixed / long-latency
    # ------------------------------------------------------------------
    KernelSpec(
        "normalize",
        """
for i in n:
    y[i] = x[i] / norm
""",
        "mixed",
        300,
    ),
    KernelSpec(
        "rsqrt_scale",
        """
for i in n:
    y[i] = x[i] / sqrt(a[i] + eps)
""",
        "mixed",
        200,
    ),
    KernelSpec(
        "distance",
        """
for i in n:
    dx = x1[i] - x2[i]
    dy = y1[i] - y2[i]
    d[i] = sqrt(dx * dx + dy * dy)
""",
        "mixed",
        200,
    ),
    KernelSpec(
        "harmonic_sum",
        """
for i in n:
    s = s + 1.0 / w[i]
""",
        "mixed",
        100,
    ),
    KernelSpec(
        "lerp",
        """
for i in n:
    y[i] = a[i] + t * (b[i] - a[i])
""",
        "mixed",
        500,
    ),
    KernelSpec(
        "fused_update",
        """
for i in n:
    g = grad[i] + wd * w[i]
    m = beta * m + g
    w[i] = w[i] - lr * m
""",
        "mixed",
        300,
    ),
    KernelSpec(
        "shift_store",
        """
for i in n:
    a[i+2] = a[i] * decay + src[i]
""",
        "mixed",
        200,
    ),
    KernelSpec(
        "polyval4",
        """
for i in n:
    t = x[i]
    y[i] = c0 + t * (c1 + t * (c2 + t * (c3 + t * c4)))
""",
        "mixed",
        300,
    ),
    # ------------------------------------------------------------------
    # Signal processing / numerics round 2
    # ------------------------------------------------------------------
    KernelSpec(
        "fir4",
        """
for i in n:
    y[i] = h0 * x[i] + h1 * x[i+1] + h2 * x[i+2] + h3 * x[i+3]
""",
        "lfk",
        400,
    ),
    KernelSpec(
        "biquad_df2",
        """
for i in n:
    w = x[i] - a1 * w1 - a2 * w2
    y[i] = b0 * w + b1 * w1 + b2 * w2
    w2 = w1
    w1 = w
""",
        "recurrence",
        300,
    ),
    KernelSpec(
        "complex_mul",
        """
for i in n:
    cr[i] = ar[i] * br[i] - ai[i] * bi[i]
    ci[i] = ar[i] * bi[i] + ai[i] * br[i]
""",
        "mixed",
        300,
    ),
    KernelSpec(
        "magnitude2",
        """
for i in n:
    m[i] = re[i] * re[i] + im[i] * im[i]
""",
        "mixed",
        400,
    ),
    KernelSpec(
        "euler_step",
        """
for i in n:
    v[i] = v[i] + dt * f[i]
    p[i] = p[i] + dt * v[i]
""",
        "stencil",
        300,
    ),
    KernelSpec(
        "relu_scale",
        """
for i in n:
    t = x[i] * g
    y[i] = max(t, 0.0)
""",
        "predicated",
        500,
    ),
    KernelSpec(
        "softshrink",
        """
for i in n:
    t = x[i]
    if t > lam:
        y[i] = t - lam
    else:
        if t < -lam:
            y[i] = t + lam
        else:
            y[i] = 0.0
""",
        "predicated",
        300,
    ),
    KernelSpec(
        "running_extrema_window",
        """
for i in n:
    hiw = max(max(x[i], x[i+1]), x[i+2])
    low = min(min(x[i], x[i+1]), x[i+2])
    r[i] = hiw - low
""",
        "predicated",
        300,
    ),
    KernelSpec(
        "dot_unrolled2",
        """
for i in n:
    s0 = s0 + a[i] * b[i]
    s1 = s1 + c[i] * d[i]
""",
        "blas",
        500,
    ),
    KernelSpec(
        "triad_offset",
        """
for i in n:
    a[i] = b[i+1] + q * c[i-1]
""",
        "blas",
        500,
    ),
    KernelSpec(
        "wavefront_like",
        """
for i in n:
    x[i] = 0.5 * (x[i-1] + y[i]) / (1.0 + z[i])
""",
        "recurrence",
        200,
    ),
    KernelSpec(
        "checksum_mix",
        """
for i in n:
    acc = acc * 31.0 + d[i]
""",
        "recurrence",
        100,
    ),
    KernelSpec(
        "geometric_decay",
        """
for i in n:
    g = g * rho
    y[i] = y[i] + g * x[i]
""",
        "recurrence",
        300,
    ),
    KernelSpec(
        "masked_divide",
        """
for i in n:
    if b[i] > eps or b[i] < -eps:
        q[i] = a[i] / b[i]
    else:
        q[i] = 0.0
""",
        "predicated",
        200,
    ),
    # ------------------------------------------------------------------
    # Irregular (indirect) access: gathers, scatters, histograms
    # ------------------------------------------------------------------
    KernelSpec(
        "histogram",
        """
for i in n:
    h[bin1[i]] = h[bin1[i]] + w[i]
""",
        "irregular",
        300,
    ),
    KernelSpec(
        "gather_scale",
        """
for i in n:
    y[i] = g * x[perm[i]]
""",
        "irregular",
        400,
    ),
    KernelSpec(
        "scatter_update",
        """
for i in n:
    out[sel[i]] = v[i] + base
""",
        "irregular",
        300,
    ),
    KernelSpec(
        "table_lookup_sum",
        """
for i in n:
    s = s + lut[key[i]] * w[i]
""",
        "irregular",
        300,
    ),
    KernelSpec(
        "bilinear_mix",
        """
for i in n:
    out[i] = w00 * p0[i] + w01 * p0[i+1] + w10 * p1[i] + w11 * p1[i+1]
""",
        "stencil",
        300,
    ),
]


KERNELS: Dict[str, KernelSpec] = {spec.name: spec for spec in _RAW}

if len(KERNELS) != len(_RAW):
    raise AssertionError("duplicate kernel names in the registry")


def kernel_names() -> List[str]:
    """All kernel names, sorted."""
    return sorted(KERNELS)


def kernel_source(name: str) -> str:
    """DSL text of a kernel, by name."""
    return KERNELS[name].source
