"""The loop corpus: the stand-in for the paper's 1327 benchmark loops.

The paper fed 1327 Fortran innermost loops (Perfect Club, SPEC, Livermore
Fortran Kernels) through the Cydra 5 compiler.  Those inputs are not
available, so this package substitutes (see DESIGN.md):

* :mod:`repro.workloads.kernels` — ~40 hand-written loops in the DSL
  (Livermore-kernel style, BLAS-1/2 fragments, stencils, recurrences,
  predicated loops) with *real semantics*, compiled by the front end and
  verified end-to-end on the simulator;
* :mod:`repro.workloads.synthetic` — a random dependence-graph generator
  calibrated to the paper's Table 3 distribution statistics (operation
  counts, SCC frequency and sizes, opcode mix), used to scale the corpus
  to the paper's size for the scheduling statistics;
* :mod:`repro.workloads.corpus` — assembly of the full 1327-loop corpus
  plus the synthetic execution profile (EntryFreq / LoopFreq) used by the
  execution-time metric.
"""

from repro.workloads.kernels import (
    KERNELS,
    KernelSpec,
    kernel_names,
    kernel_source,
)
from repro.workloads.synthetic import SyntheticConfig, synthetic_graph
from repro.workloads.corpus import CorpusLoop, build_corpus, paper_sized_corpus

__all__ = [
    "KERNELS",
    "KernelSpec",
    "kernel_names",
    "kernel_source",
    "SyntheticConfig",
    "synthetic_graph",
    "CorpusLoop",
    "build_corpus",
    "paper_sized_corpus",
]
