"""Code generation for modulo-scheduled loops (the paper's post-passes).

Once the kernel schedule exists, the paper's surrounding machinery turns it
into executable loop code:

* :mod:`repro.codegen.lifetimes` — value lifetimes under the schedule
  (from definition to last use, across iteration distances);
* :mod:`repro.codegen.mve` — modulo variable expansion [Lam]: when the
  hardware has no rotating registers, the kernel is unrolled so that no
  value is overwritten while a previous iteration's instance is live;
* :mod:`repro.codegen.rotation` — rotating-register allocation: with
  rotating files the kernel stays II cycles long and each value gets a
  block of registers addressed relative to the rotating base;
* :mod:`repro.codegen.emit` — explicit prologue / kernel / epilogue
  construction and assembly-style rendering.
"""

from repro.codegen.lifetimes import ValueLifetime, compute_lifetimes
from repro.codegen.mve import MVEKernel, modulo_variable_expansion
from repro.codegen.rotation import RotatingAllocation, allocate_rotating
from repro.codegen.emit import PipelinedCode, emit_pipelined_code
from repro.codegen.pressure import PressureReport, register_pressure
from repro.codegen.kernel_only import KernelOnlyCode, emit_kernel_only

__all__ = [
    "ValueLifetime",
    "compute_lifetimes",
    "MVEKernel",
    "modulo_variable_expansion",
    "RotatingAllocation",
    "allocate_rotating",
    "PipelinedCode",
    "emit_pipelined_code",
    "PressureReport",
    "register_pressure",
    "KernelOnlyCode",
    "emit_kernel_only",
]
