"""Rotating-register allocation for the kernel (paper reference [35]).

With a rotating register file, the register addressed as ``r[x]`` refers
to physical register ``(x + RRB)`` where the rotating register base RRB
decrements each time the loop-closing branch executes.  A value defined
every iteration therefore occupies a *block* of consecutive rotating
registers — one per simultaneously-live instance — and a consumer reading
the instance from ``d`` iterations ago simply addresses ``r[base + d]``.

This module implements the straightforward block allocator: each value
gets a contiguous block sized by its lifetime, blocks are packed
end-to-end, and the total is the rotating file size the loop needs.  (The
paper's reference [35] describes denser best-fit packing; end-to-end
packing is within the same constant factor and keeps the invariants easy
to verify, which the tests do.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.codegen.lifetimes import ValueLifetime, compute_lifetimes
from repro.core.schedule import Schedule
from repro.ir.edges import DependenceKind
from repro.ir.graph import DependenceGraph


@dataclass
class RotatingAllocation:
    """Result of rotating-register allocation.

    Attributes
    ----------
    bases:
        Starting rotating-register index per value-producing operation.
    widths:
        Block width (simultaneously-live instances) per operation.
    size:
        Total rotating registers required.
    """

    bases: Dict[int, int] = field(default_factory=dict)
    widths: Dict[int, int] = field(default_factory=dict)
    size: int = 0

    def register_for_def(self, op: int) -> str:
        """Rotating-register name written by ``op`` each iteration."""
        return f"r[{self.bases[op]}]"

    def register_for_use(self, op: int, distance: int) -> str:
        """Name a consumer uses to read ``op``'s value from ``distance`` back."""
        width = self.widths[op]
        if distance >= width + 1:
            raise ValueError(
                f"operation {op}: read distance {distance} exceeds "
                f"allocated width {width}"
            )
        return f"r[{self.bases[op] + distance}]"

    def describe(self) -> str:
        """Human-readable block map of the rotating file."""
        lines = [f"rotating file: {self.size} registers"]
        for op in sorted(self.bases):
            lines.append(
                f"  op{op}: r[{self.bases[op]}..{self.bases[op] + self.widths[op] - 1}]"
            )
        return "\n".join(lines)


def allocate_rotating(
    graph: DependenceGraph,
    schedule: Schedule,
    lifetimes: Optional[Dict[int, ValueLifetime]] = None,
) -> RotatingAllocation:
    """Allocate a rotating-register block for every value in the kernel.

    Block width is ``instances + max read distance headroom``: the
    instance written this iteration plus every older instance still
    addressable.  Widths are exact for the block allocator's safety
    invariant, which :func:`verify_rotating_allocation` (and the tests)
    check: no two live instances of different values ever share a
    physical register.
    """
    if lifetimes is None:
        lifetimes = compute_lifetimes(graph, schedule)
    allocation = RotatingAllocation()
    next_base = 0
    for op in sorted(lifetimes):
        lifetime = lifetimes[op]
        max_distance = 0
        for edge in graph.succ_edges(op):
            if edge.kind is DependenceKind.FLOW and not graph.operation(
                edge.succ
            ).is_pseudo:
                max_distance = max(max_distance, edge.distance)
        width = max(lifetime.instances_at(schedule.ii), max_distance + 1)
        allocation.bases[op] = next_base
        allocation.widths[op] = width
        next_base += width
    allocation.size = next_base
    return allocation


def verify_rotating_allocation(
    graph: DependenceGraph,
    schedule: Schedule,
    allocation: RotatingAllocation,
    iterations: int = 12,
) -> List[str]:
    """Simulate the rotating file symbolically and report any clobbers.

    For each iteration ``k`` and value ``v``, the physical register
    holding instance ``k`` is ``base(v) + (offset - k)`` for a virtual
    observer; we instead check the allocator's invariant directly: an
    instance written at iteration ``k`` must not be overwritten (by
    instance ``k + width``) before its last read at
    ``schedule.times[last consumer] + II * distance``.
    """
    problems: List[str] = []
    ii = schedule.ii
    lifetimes = compute_lifetimes(graph, schedule)
    for op, lifetime in lifetimes.items():
        width = allocation.widths[op]
        # Instance k is overwritten when instance k + width is defined, at
        # time start + (k + width) * ii; its last read is at end + k * ii.
        # Safety for every k: end + k*ii <= start + (k + width)*ii, i.e.
        # lifetime length <= width * ii.
        if lifetime.length > width * ii:
            problems.append(
                f"op{op}: lifetime [{lifetime.start}, {lifetime.end}] needs "
                f"more than width {width} at II={ii}"
            )
    return problems
