"""Value lifetimes under a modulo schedule.

A value defined by operation ``P`` at time ``t(P)`` is last used at
``max over flow consumers Q of (t(Q) + II * distance(P, Q))`` — a consumer
``d`` iterations later reads the instance written ``d * II`` cycles
earlier, so from the producer's point of view its value must survive that
long.  The lifetime length divided by II is the number of instances of the
value simultaneously live, which drives both modulo variable expansion and
rotating-register allocation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.core.schedule import Schedule
from repro.ir.edges import DependenceKind
from repro.ir.graph import DependenceGraph


@dataclass(frozen=True)
class ValueLifetime:
    """Lifetime of one operation's result value.

    Attributes
    ----------
    op:
        The defining operation.
    start:
        Its issue time.
    end:
        The latest read time across all consumers (at least
        ``start + latency``: the value exists once computed).
    """

    op: int
    start: int
    end: int

    @property
    def length(self) -> int:
        """Lifetime length in cycles (end minus start)."""
        return self.end - self.start

    def instances_at(self, ii: int) -> int:
        """Simultaneously-live instances of this value at interval ``ii``.

        A new instance is produced every II cycles while earlier instances
        may still be awaiting their last use, so ``floor(length/ii) + 1``
        instances coexist.
        """
        return self.length // ii + 1


def compute_lifetimes(
    graph: DependenceGraph, schedule: Schedule
) -> Dict[int, ValueLifetime]:
    """Lifetimes of every value-producing real operation under ``schedule``.

    Operations without a destination (stores, branches) and
    pseudo-operations produce no value and are omitted.
    """
    lifetimes: Dict[int, ValueLifetime] = {}
    ii = schedule.ii
    for operation in graph.real_operations():
        if operation.dest is None:
            continue
        op = operation.index
        start = schedule.times[op]
        end = start + graph.latency(op)
        for edge in graph.succ_edges(op):
            if edge.kind is not DependenceKind.FLOW:
                continue
            consumer = graph.operation(edge.succ)
            if consumer.is_pseudo:
                continue
            read_time = schedule.times[edge.succ] + ii * edge.distance
            if read_time > end:
                end = read_time
        lifetimes[op] = ValueLifetime(op, start, end)
    return lifetimes


def mve_unroll_factor(lifetimes: Dict[int, ValueLifetime], ii: int) -> int:
    """Kernel unroll factor needed by modulo variable expansion.

    The kernel must be unrolled enough that successive definitions of the
    *same* virtual register land in different copies while earlier
    instances are live: the maximum of ``ceil(lifetime / II)`` over all
    values (at least 1).
    """
    factor = 1
    for lifetime in lifetimes.values():
        needed = max(1, math.ceil(lifetime.length / ii)) if lifetime.length else 1
        factor = max(factor, needed)
    return factor
