"""Modulo variable expansion (Lam): kernel unrolling for register reuse.

Without rotating registers, a value whose lifetime exceeds II cycles would
be overwritten by the next iteration's definition before its last use.
Modulo variable expansion unrolls the kernel ``u`` times (``u`` = the
maximum ``ceil(lifetime / II)`` over all values) and renames each value's
destination per kernel copy; a consumer reading the instance ``d``
iterations back addresses copy ``(c - d) mod u``.

The expansion works on graphs produced by the loop front end, whose
operations carry ``attrs['operands']`` descriptors — renaming needs to
know which producer *instance* each source names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.codegen.lifetimes import ValueLifetime, compute_lifetimes, mve_unroll_factor
from repro.core.schedule import Schedule
from repro.ir.graph import DependenceGraph


@dataclass(frozen=True)
class RenamedOp:
    """One operation instance inside the expanded kernel."""

    op: int
    copy: int
    opcode: str
    dest: Optional[str]
    srcs: Tuple[str, ...]

    def render(self) -> str:
        """One-line assembly-style rendering."""
        text = self.opcode
        if self.dest is not None:
            text += f" {self.dest} <-"
        if self.srcs:
            text += " " + ", ".join(self.srcs)
        return text


@dataclass
class MVEKernel:
    """The unrolled kernel: ``unroll * ii`` rows of renamed operations."""

    ii: int
    unroll: int
    rows: List[List[RenamedOp]] = field(default_factory=list)

    @property
    def length(self) -> int:
        """Kernel length in cycles after expansion."""
        return self.ii * self.unroll

    def code_growth(self, n_real_ops: int) -> float:
        """Static kernel size relative to one copy of the loop body."""
        total = sum(len(row) for row in self.rows)
        return total / n_real_ops if n_real_ops else 1.0

    def render(self) -> str:
        """Row-by-row listing of the expanded kernel."""
        lines = [f"kernel: II={self.ii}, unroll={self.unroll}"]
        for row_index, row in enumerate(self.rows):
            ops = "; ".join(item.render() for item in row)
            lines.append(f"  {row_index:>4}: {ops}")
        return "\n".join(lines)


def _renamed_dest(graph: DependenceGraph, op: int, copy: int, unroll: int) -> str:
    dest = graph.operation(op).dest
    return f"{dest}@{copy % unroll}"


def _renamed_srcs(
    graph: DependenceGraph, op: int, copy: int, unroll: int
) -> Tuple[str, ...]:
    operation = graph.operation(op)
    operands = operation.attrs.get("operands", ())
    names: List[str] = []
    for descriptor in operands:
        if descriptor[0] == "const":
            names.append(repr(descriptor[1]))
        elif descriptor[0] == "livein":
            names.append(descriptor[1])
        elif descriptor[0] == "op":
            _, producer, distance = descriptor
            names.append(
                _renamed_dest(graph, producer, copy - distance, unroll)
            )
        else:
            names.append("?")
    return tuple(names)


def modulo_variable_expansion(
    graph: DependenceGraph,
    schedule: Schedule,
    lifetimes: Optional[Dict[int, ValueLifetime]] = None,
) -> MVEKernel:
    """Expand the kernel for a machine without rotating registers."""
    if lifetimes is None:
        lifetimes = compute_lifetimes(graph, schedule)
    ii = schedule.ii
    unroll = mve_unroll_factor(lifetimes, ii)
    rows: List[List[RenamedOp]] = [[] for _ in range(ii * unroll)]
    for operation in graph.real_operations():
        op = operation.index
        slot = schedule.times[op] % ii
        stage = schedule.times[op] // ii
        for copy in range(unroll):
            # In the expanded kernel, the iteration executing in copy c of
            # slot row r is offset by the op's stage: its values belong to
            # iteration copy (c - stage) mod unroll.
            value_copy = (copy - stage) % unroll
            row = copy * ii + slot
            dest = (
                _renamed_dest(graph, op, value_copy, unroll)
                if operation.dest is not None
                else None
            )
            rows[row].append(
                RenamedOp(
                    op=op,
                    copy=value_copy,
                    opcode=operation.opcode,
                    dest=dest,
                    srcs=_renamed_srcs(graph, op, value_copy, unroll),
                )
            )
    for row in rows:
        row.sort(key=lambda item: item.op)
    return MVEKernel(ii=ii, unroll=unroll, rows=rows)
