"""Register pressure of a modulo schedule (Huff's MaxLive, reference [18]).

In steady state, iteration ``k``'s instance of a value occupies
``[start + k*II, end + k*II)``; at a kernel slot ``s`` the live count of
one value is ``floor(length / II)`` plus one inside the remainder window.
``MaxLive`` — the maximum over slots of the summed live counts — is the
classic lower bound on the registers any allocator needs, and the quality
yardstick for the block rotating allocator in
:mod:`repro.codegen.rotation` (which can only be worse, never better).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.codegen.lifetimes import ValueLifetime, compute_lifetimes
from repro.core.schedule import Schedule
from repro.ir.graph import DependenceGraph


@dataclass(frozen=True)
class PressureReport:
    """Steady-state register pressure of one modulo schedule.

    Attributes
    ----------
    per_slot:
        Live value-instances at each kernel slot (length II).
    """

    per_slot: tuple

    @property
    def max_live(self) -> int:
        """The maximum over kernel slots of simultaneously live values."""
        return max(self.per_slot) if self.per_slot else 0

    @property
    def avg_live(self) -> float:
        """Mean live count across the kernel's slots."""
        if not self.per_slot:
            return 0.0
        return sum(self.per_slot) / len(self.per_slot)

    def describe(self) -> str:
        """One-line summary: MaxLive, average, and the per-slot counts."""
        slots = ", ".join(str(v) for v in self.per_slot)
        return (
            f"register pressure: MaxLive={self.max_live}, "
            f"avg={self.avg_live:.1f}, per-slot=[{slots}]"
        )


def register_pressure(
    graph: DependenceGraph,
    schedule: Schedule,
    lifetimes: Optional[Dict[int, ValueLifetime]] = None,
) -> PressureReport:
    """Compute steady-state per-slot live counts and MaxLive."""
    if lifetimes is None:
        lifetimes = compute_lifetimes(graph, schedule)
    ii = schedule.ii
    per_slot = [0] * ii
    for lifetime in lifetimes.values():
        length = lifetime.length
        if length <= 0:
            continue
        base = length // ii
        for slot in range(ii):
            per_slot[slot] += base
        # The remainder window [start, start + length mod II), folded.
        remainder = length % ii
        start = lifetime.start % ii
        for offset in range(remainder):
            per_slot[(start + offset) % ii] += 1
    return PressureReport(per_slot=tuple(per_slot))
