"""Kernel-only code with stage predicates and rotating registers ([36]).

With predicated execution and rotating register files (the Cydra 5 way),
a modulo-scheduled loop needs *no* separate prologue or epilogue: the
kernel alone is emitted, each operation guarded by the rotating *stage
predicate* of its stage.  The loop-closing ``brtop`` shifts a 1 into the
predicate file while iterations remain and 0 afterwards, so stages light
up one by one during the fill and wink out during the drain — zero code
expansion, at the cost of ``(SC - 1) * II`` extra cycles of partially
idle issue slots.

This module emits that form: every operation annotated with its stage
predicate ``p[s]``, destinations and sources renamed onto the rotating
file of :mod:`repro.codegen.rotation` (a consumer at iteration distance
``d`` addresses ``r[base + d]``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.codegen.rotation import RotatingAllocation, allocate_rotating
from repro.core.schedule import Schedule
from repro.ir.graph import DependenceGraph


@dataclass(frozen=True)
class KernelOnlyOp:
    """One operation of the kernel-only loop body."""

    op: int
    stage: int
    opcode: str
    dest: Optional[str]
    srcs: Tuple[str, ...]

    def render(self) -> str:
        """One-line rendering with the stage predicate."""
        text = f"(p[{self.stage}]) {self.opcode}"
        if self.dest is not None:
            text += f" {self.dest} <-"
        if self.srcs:
            text += " " + ", ".join(self.srcs)
        return text


@dataclass
class KernelOnlyCode:
    """The complete kernel-only loop: II rows, stage predicates, RRB."""

    ii: int
    stage_count: int
    rows: List[List[KernelOnlyOp]]
    rotating_size: int

    def total_cycles(self, n: int) -> int:
        """Cycles to run ``n`` iterations: fill + n kernel traversals.

        The predicate ramp costs ``SC - 1`` extra traversals relative to
        an ideal machine, which is the entire price of zero code
        expansion.
        """
        if n == 0:
            return 0
        return (n + self.stage_count - 1) * self.ii

    def render(self) -> str:
        """Row-by-row listing of the kernel-only loop body."""
        lines = [
            f"kernel-only loop: II={self.ii}, stages={self.stage_count}, "
            f"rotating registers={self.rotating_size}"
        ]
        for slot, row in enumerate(self.rows):
            ops = "; ".join(item.render() for item in row)
            lines.append(f"  {slot:>3}: {ops}")
        lines.append(
            "  brtop rotates the register base and shifts the stage "
            "predicate each traversal"
        )
        return "\n".join(lines)


def _source_names(
    graph: DependenceGraph, op: int, allocation: RotatingAllocation
) -> Tuple[str, ...]:
    names: List[str] = []
    for descriptor in graph.operation(op).attrs.get("operands", ()):
        if descriptor[0] == "const":
            names.append(repr(descriptor[1]))
        elif descriptor[0] == "livein":
            names.append(descriptor[1])
        elif descriptor[0] == "op":
            _, producer, distance = descriptor
            if producer in allocation.bases:
                names.append(allocation.register_for_use(producer, distance))
            else:
                names.append(f"op{producer}@{distance}")
        else:
            names.append("?")
    return tuple(names)


def emit_kernel_only(
    graph: DependenceGraph,
    schedule: Schedule,
    allocation: Optional[RotatingAllocation] = None,
) -> KernelOnlyCode:
    """Emit the kernel-only form of a modulo schedule."""
    if allocation is None:
        allocation = allocate_rotating(graph, schedule)
    ii = schedule.ii
    rows: List[List[KernelOnlyOp]] = [[] for _ in range(ii)]
    for operation in graph.real_operations():
        op = operation.index
        stage = schedule.stage(op)
        dest = (
            allocation.register_for_def(op)
            if op in allocation.bases
            else None
        )
        rows[schedule.slot(op)].append(
            KernelOnlyOp(
                op=op,
                stage=stage,
                opcode=operation.opcode,
                dest=dest,
                srcs=_source_names(graph, op, allocation),
            )
        )
    for row in rows:
        row.sort(key=lambda item: item.op)
    return KernelOnlyCode(
        ii=ii,
        stage_count=schedule.stage_count,
        rows=rows,
        rotating_size=allocation.size,
    )
