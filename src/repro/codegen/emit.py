"""Explicit prologue / kernel / epilogue construction (paper reference [36]).

For a machine without predicated execution or rotating registers, the
pipelined loop is laid out explicitly:

* **prologue** — ``(SC - 1) * II`` cycles filling the pipeline: cycle ``c``
  issues every operation with ``t(op) <= c`` and ``t(op) ≡ c (mod II)``;
* **kernel** — the steady state, ``II`` cycles (times the MVE unroll
  factor when modulo variable expansion is applied), executed while at
  least SC iterations remain;
* **epilogue** — ``(SC - 1) * II`` cycles draining the pipeline: each
  operation of stage ``s >= 1`` appears in rows ``t(op) - j * II`` for
  iteration lags ``j = 1..s`` (the ``j``-th-from-last iteration still owes
  its late stages).

``SC`` is the stage count ``ceil(SL / II)``.  The structural invariant the
tests assert: the prologue contains ``sum over ops of (SC - 1 - stage)``
instances, the epilogue ``sum over ops of stage``, so that with
``n - SC + 1`` kernel traversals, ``n`` iterations execute exactly
``n * |ops|`` operation instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.codegen.lifetimes import compute_lifetimes
from repro.codegen.mve import MVEKernel, modulo_variable_expansion
from repro.core.schedule import Schedule
from repro.ir.graph import DependenceGraph


@dataclass
class PipelinedCode:
    """The explicit code layout of a modulo-scheduled loop.

    ``prologue`` and ``epilogue`` are lists of rows; each row is the list
    of ``(op, iteration_lag)`` pairs issued that cycle, where the lag is
    relative to the first (for the prologue) or last (for the epilogue)
    iteration.  ``kernel`` is the (possibly MVE-expanded) steady state.
    """

    ii: int
    stage_count: int
    prologue: List[List[Tuple[int, int]]] = field(default_factory=list)
    kernel: Optional[MVEKernel] = None
    epilogue: List[List[Tuple[int, int]]] = field(default_factory=list)

    @property
    def prologue_length(self) -> int:
        """Prologue length in cycles: (stage_count - 1) * II."""
        return len(self.prologue)

    @property
    def epilogue_length(self) -> int:
        """Epilogue length in cycles: (stage_count - 1) * II."""
        return len(self.epilogue)

    def instance_count(self) -> Tuple[int, int]:
        """(prologue instances, epilogue instances)."""
        return (
            sum(len(row) for row in self.prologue),
            sum(len(row) for row in self.epilogue),
        )

    def code_size_ops(self, n_real_ops: int) -> int:
        """Total static operation slots: prologue + kernel + epilogue."""
        prologue, epilogue = self.instance_count()
        kernel = (
            sum(len(row) for row in self.kernel.rows)
            if self.kernel is not None
            else n_real_ops
        )
        return prologue + kernel + epilogue

    def render(self, graph: DependenceGraph) -> str:
        """Assembly-style listing of prologue, kernel, and epilogue."""
        lines = [
            f"pipelined loop: II={self.ii}, stages={self.stage_count}",
            "prologue:",
        ]
        for cycle, row in enumerate(self.prologue):
            ops = "; ".join(
                f"op{op}(iter {lag})" for op, lag in row
            )
            lines.append(f"  {cycle:>4}: {ops}")
        if self.kernel is not None:
            lines.append(self.kernel.render())
        lines.append("epilogue:")
        for cycle, row in enumerate(self.epilogue):
            ops = "; ".join(
                f"op{op}(last-{lag})" for op, lag in row
            )
            lines.append(f"  {cycle:>4}: {ops}")
        return "\n".join(lines)


def emit_pipelined_code(
    graph: DependenceGraph,
    schedule: Schedule,
    use_mve: bool = True,
) -> PipelinedCode:
    """Construct the explicit prologue/kernel/epilogue for a schedule."""
    ii = schedule.ii
    stage_count = schedule.stage_count
    ramp = (stage_count - 1) * ii

    prologue: List[List[Tuple[int, int]]] = [[] for _ in range(ramp)]
    epilogue: List[List[Tuple[int, int]]] = [[] for _ in range(ramp)]
    for operation in graph.real_operations():
        op = operation.index
        t = schedule.times[op]
        # Prologue: iteration j issues op at cycle t + j*II while the
        # pipeline is still filling.
        j = 0
        while t + j * ii < ramp:
            prologue[t + j * ii].append((op, j))
            j += 1
        # Epilogue: after the kernel's final cycle, iterations lagging by
        # j = 1..stage(op) still owe this op, at offset t - j*II.
        for lag in range(1, t // ii + 1):
            offset = t - lag * ii
            epilogue[offset].append((op, lag))
    for row in prologue:
        row.sort()
    for row in epilogue:
        row.sort()

    kernel = None
    if use_mve:
        lifetimes = compute_lifetimes(graph, schedule)
        kernel = modulo_variable_expansion(graph, schedule, lifetimes)
    return PipelinedCode(
        ii=ii,
        stage_count=stage_count,
        prologue=prologue,
        kernel=kernel,
        epilogue=epilogue,
    )
