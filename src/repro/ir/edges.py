"""Dependence kinds and the delay model of Table 1.

The *delay* of a dependence edge is the minimum number of cycles that must
separate the start of the predecessor operation from the start of the
successor operation.  Table 1 of the paper gives two formulae:

===================  =======================================  ==================
dependence kind      VLIW delay                               conservative delay
===================  =======================================  ==================
flow                 Latency(pred)                            Latency(pred)
anti                 1 - Latency(succ)                        0
output               1 + Latency(pred) - Latency(succ)        Latency(pred)
===================  =======================================  ==================

The VLIW column exploits non-unit architectural latencies: an
anti-dependence only requires the predecessor (the read) to *start* no later
than the successor (the write) *finishes* writing, so with a long-latency
successor the delay can be negative.  The conservative column assumes only
that the successor's latency is at least 1 and is appropriate for
superscalar processors whose latencies are not architecturally visible.

Control dependences are converted, by IF-conversion, into data dependences
on predicate values; a control edge therefore behaves like a flow dependence
from the predicate-setting operation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DependenceKind(enum.Enum):
    """Classification of a dependence edge (Section 2.2)."""

    FLOW = "flow"
    ANTI = "anti"
    OUTPUT = "output"
    CONTROL = "control"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DependenceKind.{self.name}"


class DelayModel(enum.Enum):
    """Which column of Table 1 to use when computing edge delays."""

    VLIW = "vliw"
    CONSERVATIVE = "conservative"


def edge_delay(
    kind: DependenceKind,
    pred_latency: int,
    succ_latency: int,
    model: DelayModel = DelayModel.VLIW,
) -> int:
    """Return the delay of a dependence edge per Table 1 of the paper.

    Parameters
    ----------
    kind:
        The dependence classification.
    pred_latency:
        Execution latency of the predecessor operation.
    succ_latency:
        Execution latency of the successor operation.
    model:
        ``DelayModel.VLIW`` uses the exact formulae (delays may be
        negative); ``DelayModel.CONSERVATIVE`` uses the superscalar-safe
        formulae (delays are never negative).
    """
    if pred_latency < 0 or succ_latency < 0:
        raise ValueError("latencies must be non-negative")
    if kind in (DependenceKind.FLOW, DependenceKind.CONTROL):
        return pred_latency
    if kind is DependenceKind.ANTI:
        if model is DelayModel.VLIW:
            return 1 - succ_latency
        return 0
    if kind is DependenceKind.OUTPUT:
        if model is DelayModel.VLIW:
            return 1 + pred_latency - succ_latency
        return pred_latency
    raise ValueError(f"unknown dependence kind: {kind!r}")


@dataclass(frozen=True)
class DependenceEdge:
    """A directed dependence edge in the graph.

    Attributes
    ----------
    pred:
        Index of the predecessor operation.
    succ:
        Index of the successor operation.
    kind:
        The dependence classification.
    distance:
        Number of loop iterations separating the two operations.  Zero for
        an intra-iteration dependence, ``d > 0`` when the successor belongs
        to an iteration ``d`` later than the predecessor's.
    delay:
        Minimum start-to-start separation in cycles (may be negative under
        the VLIW delay model).
    """

    pred: int
    succ: int
    kind: DependenceKind
    distance: int
    delay: int

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise ValueError(f"dependence distance must be >= 0: {self}")

    def describe(self) -> str:
        """Human-readable one-line rendering of the edge."""
        return (
            f"{self.pred} -> {self.succ} "
            f"[{self.kind.value}, distance={self.distance}, delay={self.delay}]"
        )
