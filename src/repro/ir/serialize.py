"""JSON (de)serialization of dependence graphs and schedules.

Lets a downstream user persist compiled loops and schedules — e.g. to
cache a corpus, ship a reproducer, or diff two schedulers' output.  The
machine description itself is not serialized; deserialization takes the
machine (by reference) and re-validates opcodes against it, exactly as
graph construction does.

Operand descriptors in ``attrs["operands"]`` survive the round trip
(JSON turns tuples into lists; loading restores them), so a reloaded
front-end graph still simulates.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.core.schedule import Schedule
from repro.ir.edges import DelayModel, DependenceKind
from repro.ir.graph import DependenceGraph, GraphError

_FORMAT = "repro.dependence-graph.v1"
_SCHEDULE_FORMAT = "repro.schedule.v1"


def _attrs_to_json(attrs: Dict[str, Any]) -> Dict[str, Any]:
    encoded = dict(attrs)
    operands = encoded.get("operands")
    if operands is not None:
        encoded["operands"] = [list(d) for d in operands]
    return encoded


def _attrs_from_json(attrs: Dict[str, Any]) -> Dict[str, Any]:
    decoded = dict(attrs)
    operands = decoded.get("operands")
    if operands is not None:
        decoded["operands"] = tuple(tuple(d) for d in operands)
    return decoded


def graph_to_dict(graph: DependenceGraph) -> Dict[str, Any]:
    """Serialize a sealed graph to a JSON-compatible dictionary."""
    if not graph.sealed:
        raise GraphError(f"graph {graph.name!r} must be sealed to serialize")
    operations = []
    for op in graph.real_operations():
        operations.append(
            {
                "opcode": op.opcode,
                "dest": op.dest,
                "srcs": list(op.srcs),
                "predicate": op.predicate,
                "attrs": _attrs_to_json(op.attrs),
            }
        )
    edges = []
    for edge in graph.edges:
        pred = graph.operation(edge.pred)
        succ = graph.operation(edge.succ)
        if pred.is_pseudo or succ.is_pseudo:
            continue  # seal() recreates the bracketing edges
        edges.append(
            {
                "pred": edge.pred,
                "succ": edge.succ,
                "kind": edge.kind.value,
                "distance": edge.distance,
                "delay": edge.delay,
            }
        )
    return {
        "format": _FORMAT,
        "name": graph.name,
        "delay_model": graph.delay_model.value,
        "operations": operations,
        "edges": edges,
    }


def graph_from_dict(data: Dict[str, Any], machine) -> DependenceGraph:
    """Rebuild a sealed graph from :func:`graph_to_dict` output.

    Real-operation indices are preserved (1..N in order), so serialized
    edge endpoints and ``operands`` descriptors remain valid.
    """
    if data.get("format") != _FORMAT:
        raise GraphError(
            f"not a serialized dependence graph: format "
            f"{data.get('format')!r}"
        )
    graph = DependenceGraph(
        machine,
        name=data["name"],
        delay_model=DelayModel(data["delay_model"]),
    )
    for record in data["operations"]:
        graph.add_operation(
            record["opcode"],
            dest=record["dest"],
            srcs=tuple(record["srcs"]),
            predicate=record["predicate"],
            **_attrs_from_json(record["attrs"]),
        )
    for record in data["edges"]:
        graph.add_edge(
            record["pred"],
            record["succ"],
            DependenceKind(record["kind"]),
            distance=record["distance"],
            delay=record["delay"],
        )
    return graph.seal()


def graph_to_json(graph: DependenceGraph, indent: Optional[int] = None) -> str:
    """Serialize a sealed graph to JSON text."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def graph_from_json(text: str, machine) -> DependenceGraph:
    """Rebuild a sealed graph from JSON text (see :func:`graph_from_dict`)."""
    return graph_from_dict(json.loads(text), machine)


def schedule_to_dict(schedule: Schedule, machine) -> Dict[str, Any]:
    """Serialize a schedule; alternatives are stored by (opcode, name)."""
    alternatives = {}
    for op, alt in schedule.alternatives.items():
        alternatives[str(op)] = None if alt is None else alt.name
    return {
        "format": _SCHEDULE_FORMAT,
        "graph": graph_to_dict(schedule.graph),
        "ii": schedule.ii,
        "times": {str(op): t for op, t in schedule.times.items()},
        "alternatives": alternatives,
        "modulo": schedule.modulo,
    }


def schedule_from_dict(data: Dict[str, Any], machine) -> Schedule:
    """Rebuild a schedule (and its graph) from serialized form."""
    if data.get("format") != _SCHEDULE_FORMAT:
        raise GraphError(
            f"not a serialized schedule: format {data.get('format')!r}"
        )
    graph = graph_from_dict(data["graph"], machine)
    times = {int(op): t for op, t in data["times"].items()}
    alternatives = {}
    for op_text, alt_name in data["alternatives"].items():
        op = int(op_text)
        if alt_name is None:
            alternatives[op] = None
            continue
        opcode = machine.opcode(graph.operation(op).opcode)
        matches = [a for a in opcode.alternatives if a.name == alt_name]
        if not matches:
            raise GraphError(
                f"operation {op}: machine {machine.name!r} has no "
                f"alternative {alt_name!r} for opcode "
                f"{graph.operation(op).opcode!r}"
            )
        alternatives[op] = matches[0]
    # Documents written before the flag existed are all modulo schedules.
    return Schedule(
        graph, data["ii"], times, alternatives, modulo=data.get("modulo", True)
    )


def schedule_to_json(schedule: Schedule, machine, indent: Optional[int] = None) -> str:
    """Serialize a schedule (and its graph) to JSON text."""
    return json.dumps(schedule_to_dict(schedule, machine), indent=indent)


def schedule_from_json(text: str, machine) -> Schedule:
    """Rebuild a schedule from JSON text (see :func:`schedule_from_dict`)."""
    return schedule_from_dict(json.loads(text), machine)
