"""The dependence graph consumed by the modulo scheduler.

A :class:`DependenceGraph` holds the operations of one loop body together
with their dependence edges.  Operation 0 is always the START
pseudo-operation; sealing the graph appends the STOP pseudo-operation and
makes START a predecessor, and STOP a successor, of every real operation
(Section 3.1 of the paper).  After sealing, the graph is immutable.

Edge delays follow Table 1 and are derived from operation latencies, which
the graph obtains from a *latency provider* — any object with a
``latency(opcode) -> int`` method (in practice a
:class:`repro.machine.MachineDescription`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.ir.edges import DelayModel, DependenceEdge, DependenceKind, edge_delay
from repro.ir.operation import Operation, START_OPCODE, STOP_OPCODE


class GraphError(ValueError):
    """Raised for structurally invalid graph construction or use."""


class DependenceGraph:
    """Operations plus dependence edges for one loop body.

    Parameters
    ----------
    latencies:
        A latency provider with a ``latency(opcode) -> int`` method.  It is
        consulted when an edge is added without an explicit delay and when
        the START/STOP bracketing edges are created at seal time.
    name:
        Optional label used in reports and error messages.
    delay_model:
        Which column of Table 1 to apply when deriving delays.
    """

    START = 0

    def __init__(
        self,
        latencies,
        name: str = "loop",
        delay_model: DelayModel = DelayModel.VLIW,
    ) -> None:
        self.name = name
        self.delay_model = delay_model
        self._latencies = latencies
        self._operations: List[Operation] = [Operation(0, START_OPCODE)]
        self._edges: List[DependenceEdge] = []
        self._pred_edges: List[List[DependenceEdge]] = [[]]
        self._succ_edges: List[List[DependenceEdge]] = [[]]
        self._sealed = False
        self._stop: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_operation(
        self,
        opcode: str,
        dest: Optional[str] = None,
        srcs: Sequence[str] = (),
        predicate: Optional[str] = None,
        **attrs,
    ) -> int:
        """Append a real operation and return its index."""
        self._require_unsealed()
        if opcode in (START_OPCODE, STOP_OPCODE):
            raise GraphError("pseudo-operations are managed by the graph itself")
        # Consulting the latency provider here surfaces unknown opcodes at
        # construction time rather than deep inside the scheduler.
        self._latencies.latency(opcode)
        index = len(self._operations)
        self._operations.append(
            Operation(index, opcode, dest, tuple(srcs), predicate, dict(attrs))
        )
        self._pred_edges.append([])
        self._succ_edges.append([])
        return index

    def add_edge(
        self,
        pred: int,
        succ: int,
        kind: DependenceKind,
        distance: int = 0,
        delay: Optional[int] = None,
    ) -> DependenceEdge:
        """Add a dependence edge.

        If ``delay`` is omitted it is derived from the operations' latencies
        using the graph's delay model (Table 1).
        """
        self._require_unsealed()
        self._check_index(pred)
        self._check_index(succ)
        if pred == self.START or succ == self.START:
            raise GraphError("START edges are added automatically at seal time")
        if delay is None:
            delay = edge_delay(
                kind, self.latency(pred), self.latency(succ), self.delay_model
            )
        edge = DependenceEdge(pred, succ, kind, distance, delay)
        self._record_edge(edge)
        return edge

    def seal(self) -> "DependenceGraph":
        """Append STOP, add the START/STOP bracketing edges, and freeze.

        Returns the graph itself so construction can be written as a chain.
        """
        self._require_unsealed()
        stop = len(self._operations)
        self._operations.append(Operation(stop, STOP_OPCODE))
        self._pred_edges.append([])
        self._succ_edges.append([])
        for op in self._operations[1:stop]:
            self._record_edge(
                DependenceEdge(self.START, op.index, DependenceKind.FLOW, 0, 0)
            )
            self._record_edge(
                DependenceEdge(
                    op.index, stop, DependenceKind.FLOW, 0, self.latency(op.index)
                )
            )
        # A loop body with no real operations still gets a START->STOP edge
        # so that the schedule length is well defined.
        if stop == 1:
            self._record_edge(
                DependenceEdge(self.START, stop, DependenceKind.FLOW, 0, 0)
            )
        self._stop = stop
        self._sealed = True
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def sealed(self) -> bool:
        """Whether :meth:`seal` has run (the graph is then immutable)."""
        return self._sealed

    @property
    def stop(self) -> int:
        """Index of the STOP pseudo-operation (graph must be sealed)."""
        if self._stop is None:
            raise GraphError("graph is not sealed; STOP does not exist yet")
        return self._stop

    @property
    def n_ops(self) -> int:
        """Total number of operations, including pseudo-operations."""
        return len(self._operations)

    @property
    def n_real_ops(self) -> int:
        """Number of real (non-pseudo) operations."""
        return len(self._operations) - (2 if self._sealed else 1)

    @property
    def n_edges(self) -> int:
        """Total number of dependence edges (bracketing edges included)."""
        return len(self._edges)

    @property
    def operations(self) -> Tuple[Operation, ...]:
        """All operations, pseudo-operations included, by index."""
        return tuple(self._operations)

    @property
    def edges(self) -> Tuple[DependenceEdge, ...]:
        """All dependence edges, in insertion order."""
        return tuple(self._edges)

    def operation(self, index: int) -> Operation:
        """The operation at ``index`` (raises GraphError when invalid)."""
        self._check_index(index)
        return self._operations[index]

    def real_operations(self) -> Iterator[Operation]:
        """Iterate over the non-pseudo operations."""
        return (op for op in self._operations if not op.is_pseudo)

    def latency(self, index: int) -> int:
        """Execution latency of the operation at ``index``."""
        op = self._operations[index]
        if op.is_pseudo:
            return 0
        return self._latencies.latency(op.opcode)

    def pred_edges(self, index: int) -> Tuple[DependenceEdge, ...]:
        """Edges whose successor is ``index``."""
        self._check_index(index)
        return tuple(self._pred_edges[index])

    def succ_edges(self, index: int) -> Tuple[DependenceEdge, ...]:
        """Edges whose predecessor is ``index``."""
        self._check_index(index)
        return tuple(self._succ_edges[index])

    def preds(self, index: int) -> Tuple[int, ...]:
        """Indices of immediate predecessors of ``index``."""
        return tuple(e.pred for e in self._pred_edges[index])

    def succs(self, index: int) -> Tuple[int, ...]:
        """Indices of immediate successors of ``index``."""
        return tuple(e.succ for e in self._succ_edges[index])

    def describe(self) -> str:
        """Multi-line rendering of the graph for debugging and reports."""
        lines = [f"DependenceGraph {self.name!r}: {self.n_real_ops} real ops"]
        lines.extend("  " + op.describe() for op in self._operations)
        lines.extend("  " + e.describe() for e in self._edges)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _record_edge(self, edge: DependenceEdge) -> None:
        self._edges.append(edge)
        self._succ_edges[edge.pred].append(edge)
        self._pred_edges[edge.succ].append(edge)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self._operations):
            raise GraphError(
                f"operation index {index} out of range for graph {self.name!r}"
            )

    def _require_unsealed(self) -> None:
        if self._sealed:
            raise GraphError(f"graph {self.name!r} is sealed")
