"""Operations: the vertices of the dependence graph.

An :class:`Operation` is a single machine-level operation in the loop body,
identified by an opcode understood by the machine description, plus
(optionally) the virtual registers it reads and writes.  The register and
attribute fields exist for the benefit of the front end, code generator and
simulator; the scheduler itself only consumes the opcode (to obtain
reservation-table alternatives and latency) and the dependence edges.

Two pseudo-operations, START and STOP, bracket every dependence graph
(Section 3.1).  They consume no machine resources, and the delay on each
``op -> STOP`` edge is the latency of ``op``, so STOP's scheduled time is
the schedule length for one iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

START_OPCODE = "__start__"
STOP_OPCODE = "__stop__"

_PSEUDO_OPCODES = frozenset({START_OPCODE, STOP_OPCODE})


@dataclass
class Operation:
    """A vertex in the dependence graph.

    Attributes
    ----------
    index:
        Position of the operation within its graph (assigned by the graph).
    opcode:
        Opcode name; must be known to the machine description used for
        scheduling, or one of the pseudo opcodes.
    dest:
        Name of the virtual register (EVR) written, or ``None``.
    srcs:
        Names of virtual registers read.  Literal operands are carried in
        ``attrs`` instead so that ``srcs`` is purely a register-use list.
    predicate:
        Name of the predicate register guarding this operation, or ``None``
        for an unconditional operation.
    attrs:
        Free-form attributes attached by the front end (array names, literal
        values, comparison kinds, ...) and consumed by the simulator and
        code generator.
    """

    index: int
    opcode: str
    dest: Optional[str] = None
    srcs: Tuple[str, ...] = ()
    predicate: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_pseudo(self) -> bool:
        """True for the START/STOP pseudo-operations."""
        return self.opcode in _PSEUDO_OPCODES

    @property
    def is_start(self) -> bool:
        """True for the START pseudo-operation."""
        return self.opcode == START_OPCODE

    @property
    def is_stop(self) -> bool:
        """True for the STOP pseudo-operation."""
        return self.opcode == STOP_OPCODE

    def reads(self) -> Tuple[str, ...]:
        """All register names read, including the guarding predicate."""
        if self.predicate is None:
            return self.srcs
        return self.srcs + (self.predicate,)

    def describe(self) -> str:
        """Human-readable one-line rendering of the operation."""
        parts = [f"#{self.index}", self.opcode]
        if self.dest is not None:
            parts.append(f"{self.dest} <-")
        if self.srcs:
            parts.append(", ".join(self.srcs))
        if self.predicate is not None:
            parts.append(f"if {self.predicate}")
        return " ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
