"""Dependence-graph intermediate representation for modulo scheduling.

This package provides the scheduler-facing IR described in Sections 2.2 and
3.1 of the paper: operations (vertices), dependence edges annotated with a
*distance* (iterations separating producer and consumer) and a *delay*
(minimum start-to-start interval), and the START/STOP pseudo-operations that
bracket every loop body.
"""

from repro.ir.edges import (
    DependenceKind,
    DelayModel,
    DependenceEdge,
    edge_delay,
)
from repro.ir.operation import Operation, START_OPCODE, STOP_OPCODE
from repro.ir.graph import DependenceGraph, GraphError
from repro.ir.serialize import (
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
)

__all__ = [
    "graph_from_dict",
    "graph_from_json",
    "graph_to_dict",
    "graph_to_json",
    "schedule_from_dict",
    "schedule_from_json",
    "schedule_to_dict",
    "schedule_to_json",
    "DependenceKind",
    "DelayModel",
    "DependenceEdge",
    "edge_delay",
    "Operation",
    "START_OPCODE",
    "STOP_OPCODE",
    "DependenceGraph",
    "GraphError",
]
