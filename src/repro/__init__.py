"""repro: iterative modulo scheduling (Rau, MICRO-27, 1994).

A from-scratch reproduction of the paper's software-pipelining system:

* :mod:`repro.ir` — dependence-graph IR (distances, Table-1 delays,
  START/STOP pseudo-operations);
* :mod:`repro.machine` — reservation tables, opcode alternatives, the
  reconstructed Cydra 5 of Table 2 and smaller test machines;
* :mod:`repro.core` — MII (ResMII + RecMII via ComputeMinDist over SCCs),
  HeightR priorities, and the iterative modulo scheduler of Figures 2-4;
* :mod:`repro.baselines` — acyclic list scheduling and
  unroll-before-scheduling;
* :mod:`repro.loopir` — a DO-loop front end: DSL, IF-conversion, dynamic
  single assignment, dependence analysis, lowering;
* :mod:`repro.codegen` — kernel/prologue/epilogue generation, modulo
  variable expansion, register allocation;
* :mod:`repro.simulator` — sequential and pipelined executors used to
  verify schedules end-to-end;
* :mod:`repro.workloads` — the loop corpus standing in for the paper's
  1327 benchmark loops;
* :mod:`repro.analysis` — the Table-3/Table-4/Figure-6 statistics harness.

Quickstart::

    from repro import cydra5, modulo_schedule
    from repro.loopir import compile_loop

    graph = compile_loop('''
        for i in n:
            t = load(a[i])
            u = t *. t
            store(b[i], u)
    ''', machine=cydra5())
    result = modulo_schedule(graph, cydra5())
    print(result.schedule.describe())
"""

from repro.ir import (
    DelayModel,
    DependenceEdge,
    DependenceGraph,
    DependenceKind,
    Operation,
)
from repro.machine import (
    MachineDescription,
    Opcode,
    ReservationTable,
    TableKind,
    bus_conflict_machine,
    cydra5,
    single_alu_machine,
    superscalar_machine,
    two_alu_machine,
)
from repro.core import (
    Counters,
    MIIResult,
    ModuloScheduleResult,
    Schedule,
    SchedulingFailure,
    compute_mii,
    modulo_schedule,
    validate_schedule,
)
from repro.baselines import list_schedule, unroll_and_schedule

__version__ = "1.0.0"

__all__ = [
    "DelayModel",
    "DependenceEdge",
    "DependenceGraph",
    "DependenceKind",
    "Operation",
    "MachineDescription",
    "Opcode",
    "ReservationTable",
    "TableKind",
    "bus_conflict_machine",
    "cydra5",
    "single_alu_machine",
    "superscalar_machine",
    "two_alu_machine",
    "Counters",
    "MIIResult",
    "ModuloScheduleResult",
    "Schedule",
    "SchedulingFailure",
    "compute_mii",
    "modulo_schedule",
    "validate_schedule",
    "list_schedule",
    "unroll_and_schedule",
    "__version__",
]
